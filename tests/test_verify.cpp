// The differential verification subsystem: generator determinism and
// coverage, the cross-backend oracle on clean builds, and the two planted
// defects it exists to catch — a silent miscompile in the compiled backend
// and a row-register overrun under the guard arena.
#include <gtest/gtest.h>

#include "support/fault.hpp"
#include "test_util.hpp"
#include "verify/differ.hpp"
#include "verify/pipegen.hpp"

namespace fusedp {
namespace {

using verify::DiffResult;
using verify::PipeGenOptions;

Grouping singletons(const Pipeline& pl) {
  Grouping g;
  for (int s = 0; s < pl.num_stages(); ++s) {
    GroupSchedule gs;
    gs.stages = NodeSet::single(s);
    g.groups.push_back(gs);
  }
  return g;
}

TEST(PipeGen, DeterministicPerSeed) {
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xDEADBEEFull}) {
    const auto a = verify::generate_pipeline(seed);
    const auto b = verify::generate_pipeline(seed);
    ASSERT_EQ(a->num_stages(), b->num_stages());
    ASSERT_EQ(a->num_inputs(), b->num_inputs());
    for (int s = 0; s < a->num_stages(); ++s) {
      const Stage& sa = a->stage(s);
      const Stage& sb = b->stage(s);
      EXPECT_EQ(sa.name, sb.name);
      EXPECT_EQ(sa.rank(), sb.rank());
      EXPECT_EQ(sa.volume(), sb.volume());
      EXPECT_EQ(sa.nodes.size(), sb.nodes.size());
      EXPECT_EQ(sa.loads.size(), sb.loads.size());
    }
    const auto ia = verify::generate_inputs(*a, seed);
    const auto ib = verify::generate_inputs(*b, seed);
    ASSERT_EQ(ia.size(), ib.size());
    for (std::size_t i = 0; i < ia.size(); ++i)
      EXPECT_TRUE(testing::buffers_equal(ia[i], ib[i]));
  }
}

TEST(PipeGen, DifferentSeedsDiffer) {
  // Not a guarantee per pair, but across a handful of seeds the structures
  // must not all collapse to one shape.
  bool any_differ = false;
  const auto base = verify::generate_pipeline(0);
  for (std::uint64_t seed = 1; seed < 6 && !any_differ; ++seed) {
    const auto pl = verify::generate_pipeline(seed);
    any_differ = pl->num_stages() != base->num_stages() ||
                 pl->total_volume() != base->total_volume();
  }
  EXPECT_TRUE(any_differ);
}

TEST(PipeGen, CoversTheVocabulary) {
  // Across a seed sweep the generator must exercise every feature class it
  // advertises: re-sampling accesses, rank-3 stages, constant axes,
  // non-clamp borders, selects, fan-out, and degenerate extents.
  bool scaled = false, rank3 = false, const_axis = false, border = false;
  bool select_op = false, fan_out = false, degenerate = false;
  for (std::uint64_t seed = 0; seed < 80; ++seed) {
    const auto pl = verify::generate_pipeline(seed);
    std::vector<int> consumers(static_cast<std::size_t>(pl->num_stages()), 0);
    for (int s = 0; s < pl->num_stages(); ++s) {
      const Stage& st = pl->stage(s);
      rank3 |= st.rank() == 3;
      degenerate |= st.domain.extent(st.rank() - 1) == 1 ||
                    st.domain.extent(st.rank() - 2) == 1;
      for (const ExprNode& n : st.nodes) select_op |= n.op == Op::kSelect;
      for (const Access& a : st.loads) {
        border |= a.border != Border::kClamp;
        if (!a.producer.is_input)
          ++consumers[static_cast<std::size_t>(a.producer.id)];
        for (const AxisMap& m : a.axes) {
          scaled |= m.kind == AxisMap::Kind::kAffine && (m.num != 1 || m.den != 1);
          const_axis |= m.kind == AxisMap::Kind::kConstant;
        }
      }
    }
    for (int c : consumers) fan_out |= c >= 2;
  }
  EXPECT_TRUE(scaled);
  EXPECT_TRUE(rank3);
  EXPECT_TRUE(const_axis);
  EXPECT_TRUE(border);
  EXPECT_TRUE(select_op);
  EXPECT_TRUE(fan_out);
  EXPECT_TRUE(degenerate);
}

TEST(Differ, SeedSweepIsClean) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const DiffResult res = verify::diff_seed(seed);
    EXPECT_FALSE(res.diverged) << res.record.to_string();
    EXPECT_GT(res.runs, 0);
  }
}

TEST(Differ, PlantedMiscompileCaughtWithFullRecord) {
  // Arm the test-only silent-corruption point inside the compiled backend:
  // one output element gets its low mantissa bit flipped, exactly once.
  // The oracle must catch it and produce a complete, replayable record.
  FaultInjector::arm_corrupt("compile.row_value");
  const DiffResult res = verify::diff_seed(3);
  FaultInjector::disarm();

  ASSERT_TRUE(res.diverged);
  const verify::DivergenceRecord& r = res.record;
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.seed, 3u);
  EXPECT_EQ(r.pipeline, "gen3");
  // Only the compiled evaluator hosts the fault point, so the guilty
  // backend must be a compiled config.
  EXPECT_TRUE(r.backend == "compiled-plain" || r.backend == "vector-nosuper" ||
              r.backend == "vector")
      << r.backend;
  EXPECT_FALSE(r.stage.empty());
  EXPECT_GT(r.rank, 0);
  // A single low-bit flip: patterns differ in exactly bit 0.
  EXPECT_EQ(r.want_bits ^ r.got_bits, 1u);
  EXPECT_FALSE(r.schedule.empty());
  const std::string s = r.to_string();
  EXPECT_NE(s.find("stage="), std::string::npos);
  EXPECT_NE(s.find("want=0x"), std::string::npos);
  EXPECT_NE(s.find("--replay 3"), std::string::npos);

  // The same seed must be clean once the fault is gone (nothing latched).
  const DiffResult clean = verify::diff_seed(3);
  EXPECT_FALSE(clean.diverged) << clean.record.to_string();
}

TEST(GuardArena, SyntheticOverrunDetectedCompiled) {
  // "eval.guard_overrun" writes one float past a row register's payload,
  // into the canary line — the class of bug the guard arena exists for.
  const auto pl = verify::generate_pipeline(5);
  const auto inputs = verify::generate_inputs(*pl, 5);
  ExecOptions opts;
  opts.guard_arena = true;
  FaultInjector::arm_corrupt("eval.guard_overrun");
  try {
    run_pipeline(*pl, singletons(*pl), inputs, opts);
    FaultInjector::disarm();
    FAIL() << "guard arena missed the planted overrun";
  } catch (const Error& e) {
    FaultInjector::disarm();
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
    EXPECT_NE(std::string(e.what()).find("guard"), std::string::npos)
        << e.what();
  }
}

TEST(GuardArena, SyntheticOverrunDetectedInterpreted) {
  const auto pl = verify::generate_pipeline(5);
  const auto inputs = verify::generate_inputs(*pl, 5);
  ExecOptions opts;
  opts.guard_arena = true;
  opts.compiled = false;  // exercise RowEvaluator's guard, not the compiler's
  FaultInjector::arm_corrupt("eval.guard_overrun");
  try {
    run_pipeline(*pl, singletons(*pl), inputs, opts);
    FaultInjector::disarm();
    FAIL() << "guard arena missed the planted overrun";
  } catch (const Error& e) {
    FaultInjector::disarm();
    EXPECT_EQ(e.code(), ErrorCode::kInternal);
    EXPECT_NE(std::string(e.what()).find("guard"), std::string::npos)
        << e.what();
  }
}

TEST(GuardArena, CleanRunsAreBitIdentical) {
  // Guarding must never change results: canaries live outside row payloads.
  for (std::uint64_t seed : {2ull, 9ull, 17ull}) {
    const auto pl = verify::generate_pipeline(seed);
    const auto inputs = verify::generate_inputs(*pl, seed);
    const auto ref = run_reference(*pl, inputs);
    for (const bool vec : {false, true}) {
      ExecOptions opts;
      opts.guard_arena = true;
      opts.vector_backend = vec;
      opts.num_threads = 2;
      const auto outs = run_pipeline(*pl, singletons(*pl), inputs, opts);
      ASSERT_EQ(outs.size(), pl->outputs().size());
      for (std::size_t o = 0; o < outs.size(); ++o)
        EXPECT_TRUE(testing::buffers_equal(
            outs[o],
            ref[static_cast<std::size_t>(pl->outputs()[o])]))
            << "seed " << seed << " output " << o;
    }
  }
}

TEST(Differ, GroupingOracleMatchesChosenSchedule) {
  // diff_grouping (the fusedp_cli --verify path) on a hand-picked fused
  // schedule of a generated pipeline.
  const auto pl = verify::generate_pipeline(11);
  const auto inputs = verify::generate_inputs(*pl, 11);
  const DiffResult res = verify::diff_grouping(*pl, singletons(*pl), inputs, 11);
  EXPECT_FALSE(res.diverged) << res.record.to_string();
  EXPECT_EQ(res.runs, 9);  // bit-exact configs + fastmath tol/self + Session
}

}  // namespace
}  // namespace fusedp
