// Evaluator equivalence tests: the row-vectorized evaluator must agree
// bit-for-bit with the scalar interpreter on every operator, access kind,
// and boundary condition.
#include <gtest/gtest.h>

#include <cstring>

#include "ir/builder.hpp"
#include "runtime/eval.hpp"
#include "support/image_io.hpp"
#include "support/rng.hpp"

namespace fusedp {
namespace {

// Evaluates stage 0's body over its whole domain with both evaluators and
// asserts bit-equality.  `srcs` resolves the stage's loads.
void expect_evaluators_agree(const Pipeline& pl,
                             const std::vector<LoadSrc>& srcs) {
  const Stage& st = pl.stage(pl.num_stages() - 1);
  StageEvalCtx ctx;
  ctx.stage = &st;
  ctx.srcs = srcs;
  RowEvaluator rowev;
  const Box& dom = st.domain;
  const int last = st.rank() - 1;
  std::vector<float> row(static_cast<std::size_t>(dom.extent(last)));
  std::int64_t c[kMaxDims];
  for (int d = 0; d < dom.rank; ++d) c[d] = dom.lo[d];
  for (;;) {
    rowev.eval_row(ctx, c, dom.lo[last], dom.hi[last], row.data());
    for (std::int64_t y = dom.lo[last]; y <= dom.hi[last]; ++y) {
      c[last] = y;
      const float expect = eval_scalar_at(ctx, st.body, c);
      const float got = row[static_cast<std::size_t>(y - dom.lo[last])];
      if (std::memcmp(&expect, &got, 4) != 0)
        FAIL() << "mismatch at y=" << y << ": " << expect << " vs " << got;
    }
    c[last] = dom.lo[last];
    int d = last - 1;
    for (; d >= 0; --d) {
      if (++c[d] <= dom.hi[d]) break;
      c[d] = dom.lo[d];
    }
    if (d < 0) break;
  }
}

LoadSrc src_of(const Buffer& b, const Box& dom) {
  return LoadSrc{b.view(), dom};
}

TEST(EvalTest, AllArithmeticOps) {
  Pipeline pl("p");
  const int img = pl.add_input("img", {16, 32});
  StageBuilder s(pl, pl.add_stage("s", {16, 32}));
  const Eh a = s.in(img, {0, 0});
  const Eh b = s.in(img, {1, -1});
  Eh e = a + b;
  e = e - a * 0.5f;
  e = e * b;
  e = e / (b + 2.0f);
  e = min(e, a);
  e = max(e, b * 0.1f);
  e = pow(abs(e) + 0.1f, 1.7f);
  e = sqrt(abs(e));
  e = exp(e * 0.01f);
  e = log(e + 1.5f);
  e = floor(e * 7.0f);
  e = -e;
  e = select(logical_and(lt(a, 0.7f), le(b, 0.9f)), e,
             select(logical_or(eq(a, b), lt(s.cst(0.2f), a)), a, b));
  s.define(e);
  pl.finalize();
  const Buffer in = make_synthetic_image({16, 32}, 3);
  expect_evaluators_agree(pl, {src_of(in, pl.input(0).domain),
                               src_of(in, pl.input(0).domain)});
}

TEST(EvalTest, CoordRows) {
  Pipeline pl("p");
  pl.add_input("img", {4, 8, 16});
  StageBuilder s(pl, pl.add_stage("s", {4, 8, 16}));
  s.define(s.coord(0) * 100.0f + s.coord(1) * 10.0f + s.coord(2));
  pl.finalize();
  expect_evaluators_agree(pl, {});
}

TEST(EvalTest, ClampedStencilEdges) {
  Pipeline pl("p");
  const int img = pl.add_input("img", {12, 20});
  StageBuilder s(pl, pl.add_stage("s", {12, 20}));
  // Offsets large enough to clamp on both edges of both dims.
  s.define(s.in(img, {-3, -5}) + s.in(img, {4, 7}) + s.in(img, {0, 19}) +
           s.in(img, {0, -19}));
  pl.finalize();
  const Buffer in = make_synthetic_image({12, 20}, 5);
  std::vector<LoadSrc> srcs(4, src_of(in, pl.input(0).domain));
  expect_evaluators_agree(pl, srcs);
}

TEST(EvalTest, DownsampleUpsampleAndPre) {
  Pipeline pl("p");
  const int coarse = pl.add_input("coarse", {8, 8});
  const int fine = pl.add_input("fine", {32, 32});
  StageBuilder s(pl, pl.add_stage("s", {16, 16}));
  // Upsample from coarse with pre-offset taps, downsample from fine.
  const Eh up0 = s.load({true, coarse}, {AxisMap::affine(0, 0, 1, 2, 0),
                                         AxisMap::affine(1, 0, 1, 2, 1)});
  const Eh down = s.load({true, fine}, {AxisMap::affine(0, -1, 2, 1),
                                        AxisMap::affine(1, 1, 2, 1)});
  s.define(up0 * 0.3f + down * 0.7f);
  pl.finalize();
  const Buffer c = make_synthetic_image({8, 8}, 7);
  const Buffer f = make_synthetic_image({32, 32}, 9);
  expect_evaluators_agree(pl, {src_of(c, pl.input(0).domain),
                               src_of(f, pl.input(1).domain)});
}

TEST(EvalTest, BroadcastAndConstantAxes) {
  Pipeline pl("p");
  const int img = pl.add_input("img", {3, 8, 8});
  StageBuilder s(pl, pl.add_stage("s", {8, 8}));
  const Eh r = s.load({true, img}, {AxisMap::constant(0), AxisMap::affine(0),
                                    AxisMap::affine(1)});
  const Eh g = s.load({true, img}, {AxisMap::constant(1), AxisMap::affine(0),
                                    AxisMap::affine(1)});
  s.define(r * 0.6f + g * 0.4f);
  pl.finalize();
  const Buffer in = make_synthetic_image({3, 8, 8}, 11);
  std::vector<LoadSrc> srcs(2, src_of(in, pl.input(0).domain));
  expect_evaluators_agree(pl, srcs);
}

TEST(EvalTest, DynamicGather) {
  Pipeline pl("p");
  const int lut = pl.add_input("lut", {64});
  const int img = pl.add_input("img", {16, 16});
  StageBuilder s(pl, pl.add_stage("s", {16, 16}));
  const Eh v = s.in(img, {0, 0});
  const Eh idx = v * 63.0f;  // data-dependent index, clamped by the load
  const Eh t = s.load({true, lut}, {AxisMap::dynamic(idx.r)});
  // Also an out-of-range dynamic index to exercise clamping.
  const Eh wild = s.load({true, lut}, {AxisMap::dynamic((v * 500.0f - 100.0f).r)});
  s.define(t + wild * 0.25f);
  pl.finalize();
  Buffer lutbuf({64});
  for (int i = 0; i < 64; ++i) lutbuf.data()[i] = static_cast<float>(i * i);
  const Buffer in = make_synthetic_image({16, 16}, 13);
  expect_evaluators_agree(pl, {src_of(in, pl.input(1).domain),
                               src_of(lutbuf, pl.input(0).domain),
                               src_of(lutbuf, pl.input(0).domain)});
}

TEST(EvalTest, SharedSubexpressionEvaluatedOnce) {
  // Reusing an Eh twice must be correct (and, in the row evaluator, cached).
  Pipeline pl("p");
  const int img = pl.add_input("img", {8, 8});
  StageBuilder s(pl, pl.add_stage("s", {8, 8}));
  const Eh shared = s.in(img, {0, 0}) * 3.0f;
  s.define(shared + shared * shared);
  pl.finalize();
  const Buffer in = make_synthetic_image({8, 8}, 15);
  expect_evaluators_agree(pl, {src_of(in, pl.input(0).domain)});
}

TEST(EvalTest, ViewWithOriginOffset) {
  // Loads through a scratch-like view whose origin is not zero.
  Pipeline pl("p");
  const int img = pl.add_input("img", {16, 16});
  StageBuilder s(pl, pl.add_stage("s", {16, 16}));
  s.define(s.in(img, {-1, 1}) + s.in(img, {1, -1}));
  pl.finalize();
  const Buffer in = make_synthetic_image({16, 16}, 17);
  expect_evaluators_agree(pl, {src_of(in, pl.input(0).domain),
                               src_of(in, pl.input(0).domain)});
}

TEST(EvalTest, SelectEvaluatesBothArmsIdentically) {
  // Division by zero in the untaken arm must produce identical results in
  // both evaluators (neither short-circuits).
  Pipeline pl("p");
  const int img = pl.add_input("img", {8, 8});
  StageBuilder s(pl, pl.add_stage("s", {8, 8}));
  const Eh v = s.in(img, {0, 0});
  s.define(select(lt(v, 2.0f), v, v / (v - v)));
  pl.finalize();
  const Buffer in = make_synthetic_image({8, 8}, 19);
  expect_evaluators_agree(pl, {src_of(in, pl.input(0).domain)});
}

}  // namespace
}  // namespace fusedp
