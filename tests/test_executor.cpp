// Integration tests for the overlapped-tiling executor: the load-bearing
// invariant is that EVERY valid schedule produces output bit-identical to
// the unfused scalar reference (DESIGN.md invariant #1).
#include <gtest/gtest.h>

#include "fusion/dp.hpp"
#include "fusion/halide_auto.hpp"
#include "fusion/incremental.hpp"
#include "fusion/polymage_greedy.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

void expect_matches_reference(const Pipeline& pl, const Grouping& g,
                              const std::vector<Buffer>& inputs,
                              const std::vector<Buffer>& ref, int threads,
                              EvalMode mode, const std::string& label) {
  ExecOptions opts;
  opts.num_threads = threads;
  opts.mode = mode;
  const std::vector<Buffer> outs = run_pipeline(pl, g, inputs, opts);
  ASSERT_EQ(outs.size(), pl.outputs().size());
  for (std::size_t o = 0; o < outs.size(); ++o) {
    const Buffer& expect = ref[static_cast<std::size_t>(pl.outputs()[o])];
    const std::int64_t bad = testing::first_mismatch(outs[o], expect);
    ASSERT_LT(bad, 0) << label << ": output " << o << " differs at " << bad
                      << " (got " << outs[o].data()[bad] << ", want "
                      << expect.data()[bad] << ")";
  }
}

class BenchmarkGoldenTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchmarkGoldenTest, AllSchedulersMatchReference) {
  const PipelineSpec spec = make_benchmark(GetParam(), 24);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);

  // PolyMageDP (incremental driver).
  IncFusion inc(pl, model);
  expect_matches_reference(pl, inc.run(), inputs, ref, 2, EvalMode::kRow,
                           "PolyMageDP");
  // PolyMage greedy at two configurations.
  const PolyMageGreedy greedy(pl, model);
  expect_matches_reference(pl, greedy.run(32, 64, 0.4), inputs, ref, 2,
                           EvalMode::kRow, "PolyMage-greedy-32x64");
  expect_matches_reference(pl, greedy.run(256, 256, 0.2), inputs, ref, 1,
                           EvalMode::kRow, "PolyMage-greedy-256");
  // H-auto.
  const HalideAuto hauto(pl, model);
  expect_matches_reference(pl, hauto.run(), inputs, ref, 2, EvalMode::kRow,
                           "H-auto");
  // H-manual.
  expect_matches_reference(pl, spec.manual_grouping(model), inputs, ref, 2,
                           EvalMode::kRow, "H-manual");
  // No fusion at all.
  expect_matches_reference(pl, singleton_grouping(pl, model), inputs, ref, 2,
                           EvalMode::kRow, "singletons");
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkGoldenTest,
                         ::testing::Values("unsharp", "harris", "bilateral",
                                           "interpolate", "campipe",
                                           "pyramid", "blur"));

TEST(ExecutorTest, ScalarAndRowModesAgree) {
  const PipelineSpec spec = make_harris(64, 96);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  DpFusion dp(pl, model);
  const Grouping g = dp.run();
  const std::vector<Buffer> inputs = spec.make_inputs();
  ExecOptions row, scalar;
  row.mode = EvalMode::kRow;
  scalar.mode = EvalMode::kScalar;
  const std::vector<Buffer> a = run_pipeline(pl, g, inputs, row);
  const std::vector<Buffer> b = run_pipeline(pl, g, inputs, scalar);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(testing::buffers_equal(a[i], b[i]));
}

TEST(ExecutorTest, ThreadCountDoesNotChangeResults) {
  // Tiles recompute their halos, so any thread count yields identical bits
  // (the bilateral reduction is also thread-count invariant by design).
  const PipelineSpec spec = make_bilateral(96, 96);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  DpFusion dp(pl, model);
  const Grouping g = dp.run();
  const std::vector<Buffer> inputs = spec.make_inputs();
  std::vector<Buffer> prev;
  for (int threads : {1, 2, 5}) {
    ExecOptions opts;
    opts.num_threads = threads;
    std::vector<Buffer> outs = run_pipeline(pl, g, inputs, opts);
    if (!prev.empty()) {
      for (std::size_t i = 0; i < outs.size(); ++i)
        EXPECT_TRUE(testing::buffers_equal(outs[i], prev[i]))
            << "threads=" << threads;
    }
    prev = std::move(outs);
  }
}

class TileSizeFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(TileSizeFuzzTest, ArbitraryTileSizesAreCorrect) {
  // Property: correctness never depends on the tile sizes chosen.
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const PipelineSpec spec = make_unsharp(64 + GetParam() * 3, 96);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  Grouping g;
  GroupSchedule gs;
  for (int i = 0; i < pl.num_stages(); ++i) gs.stages = gs.stages.with(i);
  gs.tile_sizes = {1 + static_cast<std::int64_t>(rng.next_below(3)),
                   1 + static_cast<std::int64_t>(rng.next_below(70)),
                   1 + static_cast<std::int64_t>(rng.next_below(100))};
  g.groups.push_back(gs);
  expect_matches_reference(pl, g, inputs, ref, 3, EvalMode::kRow,
                           "fuzz tiles");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TileSizeFuzzTest, ::testing::Range(1, 9));

class RandomPipelineFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomPipelineFuzzTest, DpScheduleMatchesReference) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const auto pl = testing::random_pipeline(7, 40 + GetParam(), 52, seed,
                                           /*scaling=*/GetParam() % 2 == 0);
  const CostModel model(*pl, MachineModel::xeon_haswell());
  DpFusion dp(*pl, model);
  const Grouping g = dp.run();
  std::vector<Buffer> inputs;
  inputs.push_back(make_synthetic_image(pl->input(0).domain.extents(), seed));
  const std::vector<Buffer> ref = run_reference(*pl, inputs);
  expect_matches_reference(*pl, g, inputs, ref, 2, EvalMode::kRow,
                           "random pipeline");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineFuzzTest, ::testing::Range(1, 13));

TEST(ExecutorTest, RejectsWrongInputCount) {
  const PipelineSpec spec = make_pyramid_blend(64, 64);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  const Grouping g = singleton_grouping(*spec.pipeline, model);
  Executor ex(*spec.pipeline, g, {});
  Workspace ws;
  std::vector<Buffer> too_few;
  too_few.push_back(make_synthetic_image({3, 64, 64}, 1));
  EXPECT_THROW(ex.run(too_few, ws), Error);
}

TEST(ExecutorTest, RejectsInvalidGrouping) {
  const PipelineSpec spec = make_unsharp(64, 64);
  Grouping bad;
  GroupSchedule gs;
  gs.stages = NodeSet::single(0);
  bad.groups.push_back(gs);  // does not cover all stages
  EXPECT_THROW(Executor(*spec.pipeline, bad, {}), Error);
}

TEST(ExecutorTest, WorkspaceReuseAcrossRuns) {
  const PipelineSpec spec = make_blur(64, 64);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  DpFusion dp(pl, model);
  Executor ex(pl, dp.run(), {});
  const std::vector<Buffer> inputs = spec.make_inputs();
  Workspace ws;
  ex.run(inputs, ws);
  const Buffer first = ws.stage_buffer(pl.outputs()[0]);
  ex.run(inputs, ws);  // second run into the same workspace
  EXPECT_TRUE(testing::buffers_equal(first, ws.stage_buffer(pl.outputs()[0])));
}

TEST(ExecutorTest, OddExtentsAndTinyImages) {
  // Non-power-of-two, odd extents exercise boundary tiles everywhere.
  const PipelineSpec spec = make_unsharp(37, 53);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  Grouping g;
  GroupSchedule gs;
  for (int i = 0; i < 4; ++i) gs.stages = gs.stages.with(i);
  gs.tile_sizes = {2, 5, 7};
  g.groups.push_back(gs);
  expect_matches_reference(pl, g, inputs, ref, 2, EvalMode::kRow, "odd");
}

}  // namespace
}  // namespace fusedp
