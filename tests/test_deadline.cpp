// Per-request deadlines and the Session degradation ladder.
//
// The load-bearing invariant: a deadline that expires mid-run cancels
// cooperatively through the executor's latch, surfaces as exactly one coded
// kDeadlineExceeded error, and leaves the Workspace so untouched-in-spirit
// that an immediate re-run without the deadline is bit-identical to a run
// that was never disturbed.
#include <gtest/gtest.h>

#include "api/session.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "support/fault.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

class FaultGuard {
 public:
  FaultGuard(const std::string& point, ErrorCode code, int skip = 0) {
    FaultInjector::arm(point, code, skip);
  }
  ~FaultGuard() { FaultInjector::disarm(); }
};

Grouping tiny_tile_grouping(const Pipeline& pl) {
  Grouping g;
  GroupSchedule gs;
  for (int i = 0; i < pl.num_stages(); ++i) gs.stages = gs.stages.with(i);
  gs.tile_sizes = {2, 8, 16};
  g.groups.push_back(gs);
  return g;
}

void expect_matches_reference(const Pipeline& pl, Workspace& ws,
                              const std::vector<Buffer>& ref) {
  for (int out : pl.outputs()) {
    const std::int64_t bad = testing::first_mismatch(
        ws.stage_buffer(out), ref[static_cast<std::size_t>(out)]);
    EXPECT_LT(bad, 0) << "output " << out << " differs at " << bad;
  }
}

TEST(DeadlineTest, UnarmedDeadlineNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.remaining_seconds() > 1e18);
}

TEST(DeadlineTest, ArmedDeadlineExpires) {
  const Deadline d = Deadline::after(0.0);
  EXPECT_TRUE(d.armed());
  EXPECT_TRUE(d.expired());
  const Deadline far = Deadline::after(3600.0);
  EXPECT_FALSE(far.expired());
  EXPECT_GT(far.remaining_seconds(), 3000.0);
}

// Satellite invariant: deadline cancellation under schedule(dynamic) with
// several worker threads leaves the Workspace reusable, and the immediate
// re-run is bit-identical to a run that never saw a deadline.
TEST(DeadlineTest, DynamicScheduleCancellationLeavesWorkspaceReusable) {
  const PipelineSpec spec = make_unsharp(64, 96);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);

  ExecOptions opts;
  opts.num_threads = 4;
  opts.tile_schedule = TileSchedule::kDynamic;
  Executor ex(pl, tiny_tile_grouping(pl), opts);
  Workspace ws;

  // Already-expired deadline: the run still prepares the workspace, then
  // every tile cancels through the latch.
  const Deadline expired = Deadline::after(0.0);
  try {
    ex.run(inputs, ws, nullptr, &expired);
    FAIL() << "expected kDeadlineExceeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }

  // Immediate re-run without the deadline: bit-identical to undisturbed.
  ex.run(inputs, ws);
  expect_matches_reference(pl, ws, ref);

  // And identical to a run in a workspace that never saw the cancellation.
  Workspace fresh;
  ex.run(inputs, fresh);
  for (int out : pl.outputs())
    EXPECT_LT(testing::first_mismatch(ws.stage_buffer(out),
                                      fresh.stage_buffer(out)),
              0);
}

TEST(DeadlineTest, FarFutureDeadlineDoesNotPerturbOutputs) {
  const PipelineSpec spec = make_unsharp(48, 64);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);

  Executor ex(pl, tiny_tile_grouping(pl), {});
  Workspace ws;
  const Deadline far = Deadline::after(3600.0);
  ex.run(inputs, ws, nullptr, &far);
  expect_matches_reference(pl, ws, ref);
}

TEST(SessionDeadlineTest, ExpiredRunDeadlineIsTerminalNoRetry) {
  const PipelineSpec spec = make_unsharp(64, 96);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();

  Options o;
  o.num_threads = 2;
  o.scheduler = Scheduler::kGreedy;
  o.run_deadline_seconds = 1e-9;  // expires before the first tile
  o.max_run_attempts = 3;         // ladder must NOT be climbed
  Result<Session> sr = Session::open(pl, o);
  ASSERT_TRUE(sr.ok()) << sr.error().what();
  Session s = std::move(sr).value();

  Result<double> r = s.execute(inputs);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kDeadlineExceeded);
  // kDeadlineExceeded is terminal: exactly one attempt, no degradation.
  ASSERT_EQ(s.last_report().attempts.size(), 1u);
  EXPECT_FALSE(s.last_report().succeeded);
  EXPECT_EQ(s.last_report().attempts[0].config, "full");
  EXPECT_EQ(s.last_report().attempts[0].code, "deadline-exceeded");
}

TEST(SessionDeadlineTest, DegradationLadderRetriesFaultAndStaysBitIdentical) {
  const PipelineSpec spec = make_unsharp(64, 96);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);

  Options o;
  o.num_threads = 2;
  o.scheduler = Scheduler::kGreedy;
  o.max_run_attempts = 3;
  Result<Session> sr = Session::open(pl, o);
  ASSERT_TRUE(sr.ok()) << sr.error().what();
  Session s = std::move(sr).value();

  // The injector's fired-latch makes the fault one-shot: attempt 1 trips it,
  // attempt 2 (first fallback rung) runs clean.
  Result<double> r = [&] {
    FaultGuard guard("executor.tile_eval", ErrorCode::kFaultInjected, 0);
    return s.execute(inputs);
  }();
  ASSERT_TRUE(r.ok()) << r.error().what();

  const observe::RunReport& rep = s.last_report();
  ASSERT_EQ(rep.attempts.size(), 2u);
  EXPECT_FALSE(rep.attempts[0].succeeded);
  EXPECT_EQ(rep.attempts[0].code, "fault-injected");
  EXPECT_TRUE(rep.attempts[1].succeeded);
  EXPECT_TRUE(rep.succeeded);
  EXPECT_TRUE(rep.degraded);
  EXPECT_EQ(rep.final_config, "no-superops");

  // Degraded success is bit-identical to the scalar reference.
  for (int i = 0; i < s.num_outputs(); ++i) {
    const int out = pl.outputs()[static_cast<std::size_t>(i)];
    EXPECT_LT(testing::first_mismatch(s.output(i),
                                      ref[static_cast<std::size_t>(out)]),
              0);
  }

  // The report renders as a readable attempt ladder.
  const std::string text = observe::run_report_to_string(rep);
  EXPECT_NE(text.find("attempt 1 [full]"), std::string::npos);
  EXPECT_NE(text.find("attempt 2 [no-superops]"), std::string::npos);
  EXPECT_NE(text.find("degraded"), std::string::npos);
}

TEST(SessionDeadlineTest, LadderExhaustionReportsLastCodedError) {
  const PipelineSpec spec = make_unsharp(48, 64);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();

  // The injector's fired latch makes each arming one-shot, so to exhaust
  // the whole ladder the observer re-arms the fault as each failed attempt
  // is streamed — every rung then trips the same coded error.
  struct Rearm : observe::Observer {
    void on_run_attempt(const observe::RunAttempt& a) override {
      if (!a.succeeded)
        FaultInjector::arm("executor.tile_eval", ErrorCode::kFaultInjected, 0);
    }
  } rearm;
  Options o2;
  o2.num_threads = 1;
  o2.scheduler = Scheduler::kGreedy;
  o2.max_run_attempts = 4;  // full + 3 rungs
  o2.observer = &rearm;
  Result<Session> sr2 = Session::open(pl, o2);
  ASSERT_TRUE(sr2.ok());
  Session s2 = std::move(sr2).value();

  FaultInjector::arm("executor.tile_eval", ErrorCode::kFaultInjected, 0);
  Result<double> r = s2.execute(inputs);
  FaultInjector::disarm();

  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kFaultInjected);
  EXPECT_EQ(s2.last_report().attempts.size(), 4u);
  EXPECT_FALSE(s2.last_report().succeeded);
  for (const observe::RunAttempt& a : s2.last_report().attempts)
    EXPECT_EQ(a.code, "fault-injected");
}

}  // namespace
}  // namespace fusedp
