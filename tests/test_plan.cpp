// Tests for schedule lowering (Grouping -> ExecutablePlan): group ordering,
// materialization, tile rounding, and the untiled-non-common-class rule.
#include <gtest/gtest.h>

#include "fusion/dp.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/plan.hpp"

namespace fusedp {
namespace {

TEST(PlanTest, GroupsOrderedTopologically) {
  const PipelineSpec spec = make_unsharp(128, 128);
  const Pipeline& pl = *spec.pipeline;
  Grouping g;
  // Deliberately pass groups in reverse order.
  GroupSchedule g2, g1;
  g2.stages = NodeSet::single(2).with(3);
  g1.stages = NodeSet::single(0).with(1);
  g.groups = {g2, g1};
  const ExecutablePlan plan = lower(pl, g);
  ASSERT_EQ(plan.groups.size(), 2u);
  EXPECT_TRUE(plan.groups[0].stages.contains(0));
  EXPECT_TRUE(plan.groups[1].stages.contains(3));
}

TEST(PlanTest, MaterializationMatchesLiveouts) {
  const PipelineSpec spec = make_unsharp(128, 128);
  const Pipeline& pl = *spec.pipeline;
  Grouping g;
  GroupSchedule all;
  for (int i = 0; i < 4; ++i) all.stages = all.stages.with(i);
  g.groups = {all};
  const ExecutablePlan plan = lower(pl, g);
  // Only the pipeline output (masked, id 3) is materialized when everything
  // is fused: blurx/blury/sharpen stay in scratch.
  EXPECT_FALSE(plan.materialized[0]);
  EXPECT_FALSE(plan.materialized[1]);
  EXPECT_FALSE(plan.materialized[2]);
  EXPECT_TRUE(plan.materialized[3]);
}

TEST(PlanTest, SplitGroupsMaterializeBoundary) {
  const PipelineSpec spec = make_unsharp(128, 128);
  const Pipeline& pl = *spec.pipeline;
  Grouping g;
  GroupSchedule a, b;
  a.stages = NodeSet::single(0).with(1);  // blurx, blury
  b.stages = NodeSet::single(2).with(3);  // sharpen, masked
  g.groups = {a, b};
  const ExecutablePlan plan = lower(pl, g);
  EXPECT_FALSE(plan.materialized[0]);  // blurx consumed inside its group
  EXPECT_TRUE(plan.materialized[1]);   // blury crosses the boundary
  EXPECT_FALSE(plan.materialized[2]);
  EXPECT_TRUE(plan.materialized[3]);
}

TEST(PlanTest, TileSizesClampedAndGranular) {
  const PipelineSpec spec = make_pyramid_blend(128, 128);
  const Pipeline& pl = *spec.pipeline;
  // Fuse out+col1 (mixed resolutions -> granularity 2) with odd tile sizes.
  int out_id = -1, col1_id = -1, colupx1_id = -1;
  for (const Stage& s : pl.stages()) {
    if (s.name == "out") out_id = s.id;
    if (s.name == "col1") col1_id = s.id;
    if (s.name == "colupx1") colupx1_id = s.id;
  }
  Grouping g;
  GroupSchedule gs;
  gs.stages = NodeSet::single(out_id).with(col1_id).with(colupx1_id);
  gs.tile_sizes = {3, 33, 7};  // odd sizes on a granularity-2 group
  g.groups.push_back(gs);
  for (int s = 0; s < pl.num_stages(); ++s)
    if (!gs.stages.contains(s)) {
      GroupSchedule single;
      single.stages = NodeSet::single(s);
      g.groups.push_back(single);
    }
  const ExecutablePlan plan = lower(pl, g);
  const GroupPlan* gp = nullptr;
  for (const GroupPlan& cand : plan.groups)
    if (cand.stages.contains(out_id)) gp = &cand;
  ASSERT_NE(gp, nullptr);
  for (int d = 0; d < gp->align.num_classes; ++d) {
    const std::int64_t t = gp->tile_sizes[static_cast<std::size_t>(d)];
    EXPECT_EQ(t % gp->align.class_granularity[static_cast<std::size_t>(d)], 0)
        << "tile must land on member-coordinate boundaries";
    EXPECT_GE(t, 1);
  }
}

TEST(PlanTest, NonCommonClassesForcedUntiled) {
  // Fusing rank-2 luma with rank-3 sharpened in campipe: the channel class
  // must stay untiled no matter what the schedule requests.
  const PipelineSpec spec = make_campipe(128, 128);
  const Pipeline& pl = *spec.pipeline;
  int shp = -1, luma = -1;
  for (const Stage& s : pl.stages()) {
    if (s.name == "sharpened") shp = s.id;
    if (s.name == "luma") luma = s.id;
  }
  Grouping g;
  GroupSchedule gs;
  gs.stages = NodeSet::single(shp).with(luma);
  gs.tile_sizes = {1, 16, 64};  // request a channel tile of 1
  g.groups.push_back(gs);
  for (int s = 0; s < pl.num_stages(); ++s)
    if (!gs.stages.contains(s)) {
      GroupSchedule single;
      single.stages = NodeSet::single(s);
      g.groups.push_back(single);
    }
  const ExecutablePlan plan = lower(pl, g);
  const GroupPlan* gp = nullptr;
  for (const GroupPlan& cand : plan.groups)
    if (cand.stages.contains(shp)) gp = &cand;
  ASSERT_NE(gp, nullptr);
  const AlignResult& align = gp->align;
  for (int d = 0; d < align.num_classes; ++d) {
    if (!align.class_common[static_cast<std::size_t>(d)]) {
      EXPECT_EQ(gp->tile_sizes[static_cast<std::size_t>(d)],
                align.class_extent[static_cast<std::size_t>(d)])
          << "non-common class " << d << " must be untiled";
    }
  }
}

TEST(PlanTest, ReductionGroupIsSingleTile) {
  const PipelineSpec spec = make_bilateral(128, 128);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  const ExecutablePlan plan = lower(pl, singleton_grouping(pl, model));
  const GroupPlan* grid = nullptr;
  for (const GroupPlan& gp : plan.groups)
    if (gp.stages.contains(0)) grid = &gp;
  ASSERT_NE(grid, nullptr);
  EXPECT_TRUE(grid->is_reduction);
  EXPECT_EQ(grid->total_tiles, 1);
}

TEST(PlanTest, UntiledGroupHasOneTile) {
  const PipelineSpec spec = make_blur(64, 64);
  const Pipeline& pl = *spec.pipeline;
  Grouping g;
  GroupSchedule gs;
  gs.stages = NodeSet::single(0).with(1);
  // empty tile_sizes -> untiled
  g.groups = {gs};
  const ExecutablePlan plan = lower(pl, g);
  EXPECT_EQ(plan.groups[0].total_tiles, 1);
}

TEST(PlanTest, TileGridCoversClassExtents) {
  const PipelineSpec spec = make_harris(100, 70);
  const Pipeline& pl = *spec.pipeline;
  Grouping g;
  GroupSchedule gs;
  for (int i = 0; i < pl.num_stages(); ++i) gs.stages = gs.stages.with(i);
  gs.tile_sizes = {17, 23};
  g.groups = {gs};
  const ExecutablePlan plan = lower(pl, g);
  const GroupPlan& gp = plan.groups[0];
  for (int d = 0; d < gp.align.num_classes; ++d) {
    const std::int64_t covered =
        gp.tiles_per_dim[static_cast<std::size_t>(d)] *
        gp.tile_sizes[static_cast<std::size_t>(d)];
    EXPECT_GE(covered, gp.align.class_extent[static_cast<std::size_t>(d)]);
    EXPECT_LT(covered - gp.tile_sizes[static_cast<std::size_t>(d)],
              gp.align.class_extent[static_cast<std::size_t>(d)]);
  }
}

}  // namespace
}  // namespace fusedp
