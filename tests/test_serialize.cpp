// Tests for schedule text serialization and DOT export.
#include <gtest/gtest.h>

#include <cstdio>

#include "fusion/dp.hpp"
#include "fusion/serialize.hpp"
#include "ir/dot.hpp"
#include "pipelines/pipelines.hpp"

namespace fusedp {
namespace {

TEST(SerializeTest, RoundTripPreservesGrouping) {
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, 16);
    const Pipeline& pl = *spec.pipeline;
    const CostModel model(pl, MachineModel::xeon_haswell());
    const Grouping g = spec.manual_grouping(model);
    const Grouping back = grouping_from_text(pl, grouping_to_text(pl, g));
    ASSERT_EQ(back.groups.size(), g.groups.size()) << info.key;
    // Compare as sets of (stages, tiles).
    for (const GroupSchedule& gs : g.groups) {
      bool found = false;
      for (const GroupSchedule& bs : back.groups)
        if (bs.stages == gs.stages && bs.tile_sizes == gs.tile_sizes)
          found = true;
      EXPECT_TRUE(found) << info.key << " group " << gs.stages.to_string();
    }
  }
}

TEST(SerializeTest, HandWrittenScheduleParses) {
  const PipelineSpec spec = make_unsharp(128, 128);
  const Grouping g = grouping_from_text(*spec.pipeline,
                                        "# comment\n"
                                        "\n"
                                        "group blurx blury : 3 16 128\n"
                                        "group sharpen masked :\n");
  ASSERT_EQ(g.groups.size(), 2u);
  EXPECT_EQ(g.groups[0].tile_sizes, (std::vector<std::int64_t>{3, 16, 128}));
  EXPECT_TRUE(g.groups[1].tile_sizes.empty());
}

TEST(SerializeTest, RejectsBadInput) {
  const PipelineSpec spec = make_unsharp(128, 128);
  const Pipeline& pl = *spec.pipeline;
  EXPECT_THROW(grouping_from_text(pl, "group nosuchstage :\n"), Error);
  EXPECT_THROW(grouping_from_text(pl, "grp blurx :\n"), Error);
  EXPECT_THROW(grouping_from_text(pl, "group blurx blurx :\n"), Error);
  EXPECT_THROW(grouping_from_text(pl, "group blurx : -3\n"), Error);
  // Valid syntax but incomplete coverage -> invalid grouping.
  EXPECT_THROW(grouping_from_text(pl, "group blurx blury :\n"), Error);
  // Fusing across a gap -> disconnected group.
  EXPECT_THROW(grouping_from_text(pl,
                                  "group blurx masked :\n"
                                  "group blury :\ngroup sharpen :\n"),
               Error);
}

TEST(SerializeTest, FileRoundTrip) {
  const PipelineSpec spec = make_harris(96, 96);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  DpFusion dp(pl, model);
  const Grouping g = dp.run();
  const std::string path = ::testing::TempDir() + "/fusedp_sched.txt";
  save_grouping(pl, g, path);
  const Grouping back = load_grouping(pl, path);
  EXPECT_EQ(back.groups.size(), g.groups.size());
  std::remove(path.c_str());
}

TEST(DotTest, PipelineDotMentionsEverything) {
  const PipelineSpec spec = make_bilateral(64, 64);
  const std::string dot = pipeline_to_dot(*spec.pipeline);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("grid"), std::string::npos);
  EXPECT_NE(dot.find("(reduction)"), std::string::npos);
  EXPECT_NE(dot.find("dyn"), std::string::npos);  // slice's dynamic edge
  // One node line per stage.
  for (const Stage& s : spec.pipeline->stages())
    EXPECT_NE(dot.find("\"" + s.name), std::string::npos) << s.name;
}

TEST(DotTest, GroupingDotHasClusters) {
  const PipelineSpec spec = make_unsharp(128, 128);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  DpFusion dp(*spec.pipeline, model);
  const std::string dot = grouping_to_dot(*spec.pipeline, dp.run());
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("tiles ["), std::string::npos);
}

TEST(DotTest, ScaledEdgesLabeled) {
  const PipelineSpec spec = make_interpolate(64, 64);
  const std::string dot = pipeline_to_dot(*spec.pipeline);
  EXPECT_NE(dot.find("scaled"), std::string::npos);
}

}  // namespace
}  // namespace fusedp
