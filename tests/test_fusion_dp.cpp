// Tests for the DP grouping engine (Algorithm 1 / Figure 5), including the
// paper's complexity claims on linear pipelines and optimality against
// brute-force enumeration on random DAGs.
#include <gtest/gtest.h>

#include "fusion/dp.hpp"
#include "fusion/incremental.hpp"
#include "pipelines/pipelines.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

// Linear pipeline of n pointwise/stencil stages.
std::unique_ptr<Pipeline> linear_pipeline(int n, std::int64_t hw = 64) {
  auto pl = std::make_unique<Pipeline>("linear");
  const int img = pl->add_input("img", {hw, hw});
  const Stage* prev = nullptr;
  for (int i = 0; i < n; ++i) {
    StageBuilder b(*pl, pl->add_stage("s" + std::to_string(i), {hw, hw}));
    Eh e = prev == nullptr
               ? b.in(img, {0, 0}) + b.in(img, {0, 1})
               : b.at(*prev, {0, -1}) + b.at(*prev, {0, 1});
    b.define(e * 0.5f);
    prev = &b.stage();
  }
  pl->finalize();
  return pl;
}

TEST(DpTest, LinearStateCountIsQuadratic) {
  // Section 3.3: for a linear DAG the DP evaluates n(n+1)/2 states while
  // covering all 2^(n-1) groupings.
  for (int n : {2, 3, 4, 5, 8}) {
    const auto pl = linear_pipeline(n);
    const CostModel model(*pl, MachineModel::xeon_haswell());
    DpFusion dp(*pl, model);
    const Grouping g = dp.run();
    EXPECT_EQ(dp.stats().groupings_enumerated,
              static_cast<std::uint64_t>(n) * (n + 1) / 2)
        << "n=" << n;
    std::string why;
    EXPECT_TRUE(validate_grouping(*pl, g, &why)) << why;
  }
}

TEST(DpTest, UnsharpMatchesPaperTable2Count) {
  // Paper Table 2: Unsharp Mask enumerates 10 groupings.
  const PipelineSpec spec = make_unsharp(256, 256);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  DpFusion dp(*spec.pipeline, model);
  dp.run();
  EXPECT_EQ(dp.stats().groupings_enumerated, 10u);
}

TEST(DpTest, OptimalOnLinearPipelinesVsBruteForce) {
  for (int n : {3, 4, 5}) {
    const auto pl = linear_pipeline(n);
    const CostModel model(*pl, MachineModel::xeon_haswell());
    DpFusion dp(*pl, model);
    const Grouping got = dp.run();
    double best = kInfiniteCost;
    std::uint64_t count = 0;
    testing::for_each_valid_grouping(*pl, [&](const Grouping& g) {
      ++count;
      double c = 0.0;
      for (const GroupSchedule& gs : g.groups) c += model.cost(gs.stages).cost;
      best = std::min(best, c);
    });
    EXPECT_EQ(count, 1ull << (n - 1)) << "2^(n-1) valid groupings of a chain";
    EXPECT_NEAR(got.total_cost, best, 1e-9) << "n=" << n;
  }
}

TEST(DpTest, OptimalOnRandomDagsVsBruteForce) {
  int compared = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto pl = testing::random_pipeline(6, 48, 48, seed,
                                             /*scaling=*/seed % 3 == 0);
    const CostModel model(*pl, MachineModel::xeon_haswell());
    DpFusion dp(*pl, model);
    const Grouping got = dp.run();
    std::string why;
    ASSERT_TRUE(validate_grouping(*pl, got, &why)) << why << " seed " << seed;
    double best = kInfiniteCost;
    testing::for_each_valid_grouping(*pl, [&](const Grouping& g) {
      double c = 0.0;
      for (const GroupSchedule& gs : g.groups) c += model.cost(gs.stages).cost;
      best = std::min(best, c);
    });
    ASSERT_LT(best, kInfiniteCost);
    EXPECT_NEAR(got.total_cost, best, 1e-9) << "seed " << seed;
    ++compared;
  }
  EXPECT_EQ(compared, 12);
}

TEST(DpTest, ValidOnAllBenchmarks) {
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, 16);
    const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
    // pyramid's raw DP is intractable by design (paper Section 5) — use the
    // incremental driver there.
    Grouping g;
    if (info.key == "pyramid") {
      IncFusion inc(*spec.pipeline, model);
      g = inc.run();
    } else {
      DpFusion dp(*spec.pipeline, model);
      g = dp.run();
    }
    std::string why;
    EXPECT_TRUE(validate_grouping(*spec.pipeline, g, &why))
        << info.key << ": " << why;
    EXPECT_LT(g.total_cost, kInfiniteCost);
  }
}

TEST(DpTest, NeverWorseThanSingletons) {
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    const auto pl = testing::random_pipeline(8, 48, 48, seed);
    const CostModel model(*pl, MachineModel::xeon_haswell());
    DpFusion dp(*pl, model);
    const Grouping got = dp.run();
    const Grouping single = singleton_grouping(*pl, model);
    EXPECT_LE(got.total_cost, single.total_cost + 1e-9) << "seed " << seed;
  }
}

TEST(DpTest, GroupLimitRespected) {
  const PipelineSpec spec = make_harris(128, 128);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  DpOptions opts;
  opts.group_limit = 3;
  DpFusion dp(*spec.pipeline, model, opts);
  const Grouping g = dp.run();
  for (const GroupSchedule& gs : g.groups) EXPECT_LE(gs.stages.size(), 3);
}

TEST(DpTest, StateBudgetEnforced) {
  const PipelineSpec spec = make_campipe(128, 128);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  DpOptions opts;
  opts.max_states = 100;
  DpFusion dp(*spec.pipeline, model, opts);
  EXPECT_THROW(dp.run(), Error);
}

TEST(DpTest, BilateralNeverFusesReductionOrSlice) {
  const PipelineSpec spec = make_bilateral(256, 256);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  DpFusion dp(*spec.pipeline, model);
  const Grouping g = dp.run();
  for (const GroupSchedule& gs : g.groups) {
    if (gs.stages.contains(0)) {
      EXPECT_EQ(gs.stages.size(), 1);  // grid must stay alone
    }
    // blurs (1-3) never share a group with slices (4-6).
    const bool has_blur = gs.stages.intersects(
        NodeSet::single(1).with(2).with(3));
    const bool has_slice = gs.stages.intersects(
        NodeSet::single(4).with(5).with(6));
    EXPECT_FALSE(has_blur && has_slice);
  }
}

TEST(QuotientGraphTest, IdentityAddsDummyForMultipleSources) {
  const PipelineSpec spec = make_pyramid_blend(64, 64);
  const QuotientGraph q = QuotientGraph::identity(*spec.pipeline);
  EXPECT_GE(q.dummy, 0);
  EXPECT_EQ(q.num_nodes(), spec.pipeline->num_stages() + 1);
  EXPECT_TRUE(q.underlying[static_cast<std::size_t>(q.dummy)].empty());
  const PipelineSpec blur = make_blur(64, 64);
  const QuotientGraph qb = QuotientGraph::identity(*blur.pipeline);
  EXPECT_LT(qb.dummy, 0);
}

TEST(QuotientGraphTest, CondensePreservesEdgesAndExpansion) {
  const PipelineSpec spec = make_unsharp(128, 128);
  const Pipeline& pl = *spec.pipeline;
  Grouping g;
  GroupSchedule a, b;
  a.stages = NodeSet::single(0).with(1);  // blurx, blury
  b.stages = NodeSet::single(2).with(3);  // sharpen, masked
  g.groups = {a, b};
  const QuotientGraph q = QuotientGraph::condense(pl, g);
  EXPECT_EQ(q.num_nodes(), 2);
  EXPECT_TRUE(q.graph.has_edge(0, 1));
  EXPECT_FALSE(q.graph.has_edge(1, 0));
  EXPECT_EQ(q.expand(NodeSet::single(0).with(1)).size(), 4);
}

TEST(IncrementalTest, MatchesOrBeatsBoundedAndIsValid) {
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, 16);
    const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
    IncFusion inc(*spec.pipeline, model);
    const Grouping g = inc.run();
    std::string why;
    EXPECT_TRUE(validate_grouping(*spec.pipeline, g, &why))
        << info.key << ": " << why;
    EXPECT_GE(inc.stats().iterations, 1);
    EXPECT_GT(inc.stats().groupings_enumerated, 0u);
  }
}

TEST(IncrementalTest, FindsDpOptimumOnLinearChains) {
  const auto pl = linear_pipeline(6);
  const CostModel model(*pl, MachineModel::xeon_haswell());
  DpFusion dp(*pl, model);
  const Grouping exact = dp.run();
  IncFusion inc(*pl, model);
  const Grouping approx = inc.run();
  // The final unbounded pass on the condensed graph can refine up to the
  // exact optimum on chains.
  EXPECT_LE(approx.total_cost, exact.total_cost * 1.05 + 1e-9);
}

}  // namespace
}  // namespace fusedp
