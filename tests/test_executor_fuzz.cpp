// Heavier schedule-independence fuzzing: random pipelines under *every*
// valid grouping (brute-force enumerated) and random tile sizes must match
// the scalar reference bit-for-bit.  This is the strongest form of
// DESIGN.md invariant #1.
#include <gtest/gtest.h>

#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

class AllGroupingsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AllGroupingsFuzz, EveryValidGroupingMatchesReference) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  const auto pl = testing::random_pipeline(5, 33 + GetParam(), 41, seed,
                                           /*scaling=*/GetParam() % 2 == 1);
  std::vector<Buffer> inputs;
  inputs.push_back(make_synthetic_image(pl->input(0).domain.extents(), seed));
  const std::vector<Buffer> ref = run_reference(*pl, inputs);
  Rng rng(seed * 977);

  int tried = 0;
  testing::for_each_valid_grouping(*pl, [&](const Grouping& base) {
    // Keep runtime bounded: execute a random ~half of the groupings.
    if (rng.next_bool(0.5)) return;
    Grouping g = base;
    for (GroupSchedule& gs : g.groups) {
      // Random tile sizes, sometimes untiled.
      if (rng.next_bool(0.3)) continue;
      gs.tile_sizes = {1 + static_cast<std::int64_t>(rng.next_below(40)),
                       1 + static_cast<std::int64_t>(rng.next_below(50))};
    }
    ExecOptions opts;
    opts.num_threads = 1 + static_cast<int>(rng.next_below(3));
    const std::vector<Buffer> outs = run_pipeline(*pl, g, inputs, opts);
    for (std::size_t o = 0; o < outs.size(); ++o) {
      const Buffer& expect =
          ref[static_cast<std::size_t>(pl->outputs()[o])];
      const std::int64_t bad = testing::first_mismatch(outs[o], expect);
      ASSERT_LT(bad, 0) << "seed " << seed << " grouping "
                        << g.to_string(*pl) << " output " << o
                        << " differs at " << bad;
    }
    ++tried;
  });
  EXPECT_GT(tried, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllGroupingsFuzz, ::testing::Range(1, 7));

TEST(MultiOutputTest, MarkedIntermediateIsMaterializedUnderFusion) {
  // A stage explicitly marked as output, fused into the middle of a group,
  // must still be written out completely and correctly.
  Pipeline pl("multiout");
  const int img = pl.add_input("img", {48, 64});
  StageBuilder a(pl, pl.add_stage("a", {48, 64}));
  a.define((a.in(img, {0, -1}) + a.in(img, {0, 1})) * 0.5f);
  StageBuilder b(pl, pl.add_stage("b", {48, 64}));
  b.define((b.at(a.stage(), {-1, 0}) + b.at(a.stage(), {1, 0})) * 0.5f);
  b.mark_output();  // intermediate live-out
  StageBuilder c(pl, pl.add_stage("c", {48, 64}));
  c.define(c.at(b.stage(), {0, 0}) * 2.0f + c.at(a.stage(), {0, 0}));
  pl.finalize();
  ASSERT_EQ(pl.outputs().size(), 2u);

  std::vector<Buffer> inputs;
  inputs.push_back(make_synthetic_image({48, 64}, 3));
  const std::vector<Buffer> ref = run_reference(pl, inputs);

  Grouping g;
  GroupSchedule gs;
  gs.stages = NodeSet::single(0).with(1).with(2);
  gs.tile_sizes = {13, 17};
  g.groups = {gs};
  const std::vector<Buffer> outs = run_pipeline(pl, g, inputs, {});
  ASSERT_EQ(outs.size(), 2u);
  for (std::size_t o = 0; o < 2; ++o)
    EXPECT_TRUE(testing::buffers_equal(
        outs[o], ref[static_cast<std::size_t>(pl.outputs()[o])]));
}

TEST(MultiOutputTest, DiamondConsumersShareProducerScratch) {
  // Diamond: a feeds b and c, d reads both; fused with tiling, all halos
  // must union correctly in a's required region.
  Pipeline pl("diamond");
  const int img = pl.add_input("img", {40, 56});
  StageBuilder a(pl, pl.add_stage("a", {40, 56}));
  a.define(a.in(img, {0, 0}) * 1.5f);
  StageBuilder b(pl, pl.add_stage("b", {40, 56}));
  b.define(b.at(a.stage(), {0, -3}) + b.at(a.stage(), {0, 3}));
  StageBuilder c(pl, pl.add_stage("c", {40, 56}));
  c.define(c.at(a.stage(), {-2, 0}) + c.at(a.stage(), {2, 0}));
  StageBuilder d(pl, pl.add_stage("d", {40, 56}));
  d.define(d.at(b.stage(), {0, 0}) * 0.25f + d.at(c.stage(), {0, 0}));
  pl.finalize();

  std::vector<Buffer> inputs;
  inputs.push_back(make_synthetic_image({40, 56}, 9));
  const std::vector<Buffer> ref = run_reference(pl, inputs);

  Grouping g;
  GroupSchedule gs;
  for (int i = 0; i < 4; ++i) gs.stages = gs.stages.with(i);
  gs.tile_sizes = {7, 11};
  g.groups = {gs};
  const std::vector<Buffer> outs = run_pipeline(pl, g, inputs, {});
  EXPECT_TRUE(testing::buffers_equal(outs[0], ref[3]));
}

}  // namespace
}  // namespace fusedp
