// ResourceGovernor admission control: bookkeeping, budget rejection with a
// coded error, bounded-backoff queueing, RAII charges, and the metered
// ScratchArena / Workspace integration (admission before allocation, state
// intact after a rejection).
#include <gtest/gtest.h>

#include <thread>

#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "runtime/governor.hpp"
#include "support/vec.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

// The governor is process-global; every test leaves it unlimited.
class GovernorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResourceGovernor::instance().reset_for_test();
    ResourceGovernor::instance().set_budget(0);
  }
  void TearDown() override {
    ResourceGovernor::instance().set_budget(0);
    ResourceGovernor::instance().reset_for_test();
  }
};

TEST_F(GovernorTest, ChargeUnchargeAndHighWater) {
  ResourceGovernor& gov = ResourceGovernor::instance();
  const std::int64_t base = gov.used();
  gov.charge(1000);
  EXPECT_EQ(gov.used(), base + 1000);
  gov.charge(500);
  EXPECT_EQ(gov.used(), base + 1500);
  EXPECT_GE(gov.high_water(), base + 1500);
  gov.uncharge(1500);
  EXPECT_EQ(gov.used(), base);
  EXPECT_GE(gov.high_water(), base + 1500);  // high-water sticks
}

TEST_F(GovernorTest, BudgetRejectionIsCodedAndLeavesUsageUnchanged) {
  ResourceGovernor& gov = ResourceGovernor::instance();
  const std::int64_t base = gov.used();
  gov.set_budget(base + 1000, /*max_queue_wait_seconds=*/0.0);
  gov.charge(800);
  try {
    gov.charge(800);  // would overshoot
    FAIL() << "expected kResourceExhausted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
  }
  EXPECT_EQ(gov.used(), base + 800);  // rejected charge not applied
  EXPECT_GE(gov.rejections(), 1u);
  gov.uncharge(800);
}

TEST_F(GovernorTest, QueuedChargeAdmittedWhenMemoryIsReleased) {
  ResourceGovernor& gov = ResourceGovernor::instance();
  const std::int64_t base = gov.used();
  gov.set_budget(base + 1000, /*max_queue_wait_seconds=*/2.0);
  gov.charge(900);
  bool admitted = false;
  std::thread waiter([&] {
    gov.charge(500);  // must queue until the 900 is released
    admitted = true;
    gov.uncharge(500);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gov.uncharge(900);
  waiter.join();
  EXPECT_TRUE(admitted);
  EXPECT_GE(gov.waits(), 1u);
  EXPECT_EQ(gov.used(), base);
}

TEST_F(GovernorTest, GovernedChargeAdjustsAndReleasesOnDestruction) {
  ResourceGovernor& gov = ResourceGovernor::instance();
  const std::int64_t base = gov.used();
  {
    GovernedCharge c;
    c.adjust_to(4096);
    EXPECT_EQ(c.bytes(), 4096);
    EXPECT_EQ(gov.used(), base + 4096);
    c.adjust_to(1024);  // shrink releases the delta
    EXPECT_EQ(gov.used(), base + 1024);
  }
  EXPECT_EQ(gov.used(), base);  // destructor released the rest
}

TEST_F(GovernorTest, GovernedChargeKeepsOldChargeOnRejectedGrow) {
  ResourceGovernor& gov = ResourceGovernor::instance();
  const std::int64_t base = gov.used();
  gov.set_budget(base + 2000, 0.0);
  GovernedCharge c;
  c.adjust_to(1500);
  EXPECT_THROW(c.adjust_to(5000), Error);
  EXPECT_EQ(c.bytes(), 1500);  // unchanged
  EXPECT_EQ(gov.used(), base + 1500);
  c.release();
}

TEST_F(GovernorTest, ScratchArenaGrowthIsMeteredAndRejectionKeepsArena) {
  ResourceGovernor& gov = ResourceGovernor::instance();
  const std::int64_t base = gov.used();
  ScratchArena arena;
  float* p = arena.ensure(1024);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(gov.used(), base + 4096);  // 1024 floats charged
  const std::size_t cap = arena.capacity();
  const std::int64_t used_after_alloc = gov.used();

  gov.set_budget(gov.used() + 1024, 0.0);  // too tight for any real growth
  EXPECT_THROW(arena.ensure(1 << 20), Error);
  // The rejection left the arena at its previous block, still usable, and
  // the accounting unchanged.
  EXPECT_EQ(arena.capacity(), cap);
  EXPECT_EQ(arena.data(), p);
  EXPECT_EQ(gov.used(), used_after_alloc);

  gov.set_budget(0);
  arena.release();
  EXPECT_EQ(gov.used(), base);  // release returned exactly what was charged
}

TEST_F(GovernorTest, ScratchArenaMoveTransfersCharge) {
  ResourceGovernor& gov = ResourceGovernor::instance();
  const std::int64_t base = gov.used();
  ScratchArena a;
  a.ensure(512);
  const std::int64_t charged = a.charged_bytes();
  EXPECT_GT(charged, 0);
  ScratchArena b(std::move(a));
  EXPECT_EQ(a.charged_bytes(), 0);
  EXPECT_EQ(b.charged_bytes(), charged);
  EXPECT_EQ(gov.used(), base + charged);  // no double count
  b.release();
  EXPECT_EQ(gov.used(), base);
}

TEST_F(GovernorTest, WorkspaceAdmissionRejectsBeforeAllocatingAndRecovers) {
  const PipelineSpec spec = make_unsharp(64, 96);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);

  ResourceGovernor& gov = ResourceGovernor::instance();
  ExecOptions opts;
  opts.num_threads = 2;
  Grouping g;
  GroupSchedule gs;
  for (int i = 0; i < pl.num_stages(); ++i) gs.stages = gs.stages.with(i);
  gs.tile_sizes = {8, 32};
  g.groups.push_back(gs);
  Executor ex(pl, g, opts);
  Workspace ws;

  gov.set_budget(gov.used() + 1024, 0.0);  // nowhere near the footprint
  try {
    ex.run(inputs, ws);
    FAIL() << "expected kResourceExhausted";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kResourceExhausted);
  }

  // Lifting the budget makes the same workspace complete cleanly and
  // bit-identically: the rejection left it fully reusable.
  gov.set_budget(0);
  ex.run(inputs, ws);
  for (int out : pl.outputs()) {
    EXPECT_LT(testing::first_mismatch(ws.stage_buffer(out),
                                      ref[static_cast<std::size_t>(out)]),
              0);
  }
}

}  // namespace
}  // namespace fusedp
