// FaultInjector thread-safety: many threads hammering an armed point must
// produce exactly one throw (the fired latch), precise hit accounting, and
// no data races while another thread concurrently arms/disarms.  The TSan
// CI leg runs this file specifically.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/fault.hpp"

namespace fusedp {
namespace {

TEST(FaultConcurrencyTest, ExactlyOneThrowAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 200;
  FaultInjector::arm("concurrency.point", ErrorCode::kFaultInjected, 0);

  std::atomic<int> throws{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        try {
          FaultInjector::hit("concurrency.point");
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
          throws.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();

  EXPECT_EQ(throws.load(), 1);  // the fired latch admits exactly one
  EXPECT_GE(FaultInjector::hits(), 1u);
  FaultInjector::disarm();
}

TEST(FaultConcurrencyTest, CountdownSkipsAreHonoredUnderContention) {
  constexpr int kThreads = 6;
  constexpr int kHitsPerThread = 100;
  constexpr int kSkip = 40;
  FaultInjector::arm("concurrency.skip", ErrorCode::kFaultInjected, kSkip);

  std::atomic<int> throws{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        try {
          FaultInjector::hit("concurrency.skip");
        } catch (const Error&) {
          throws.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();

  // More total hits than the skip count, so the fault fired — once.  At
  // least skip+1 hits were counted before the latch closed (counting stops
  // once fired).
  EXPECT_EQ(throws.load(), 1);
  EXPECT_GE(FaultInjector::hits(), static_cast<std::uint64_t>(kSkip + 1));
  FaultInjector::disarm();
}

TEST(FaultConcurrencyTest, ConcurrentArmDisarmHitIsRaceFree) {
  std::atomic<bool> stop{false};
  std::thread armer([&] {
    int round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      FaultInjector::arm("concurrency.race", ErrorCode::kFaultInjected,
                         round % 3);
      FaultInjector::disarm();
      ++round;
    }
  });

  std::vector<std::thread> hitters;
  for (int t = 0; t < 4; ++t) {
    hitters.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        try {
          FaultInjector::hit("concurrency.race");
          FaultInjector::hit("some.other.point");  // name mismatch path
        } catch (const Error& e) {
          EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
        }
      }
    });
  }
  for (std::thread& th : hitters) th.join();
  stop.store(true, std::memory_order_release);
  armer.join();
  FaultInjector::disarm();  // leave no armed state for later tests
}

TEST(FaultConcurrencyTest, CorruptModeNeverThrowsAndFiresOnce) {
  FaultInjector::arm_corrupt("concurrency.corrupt", 0);
  std::atomic<int> fired{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < 6; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (FaultInjector::corrupt_now("concurrency.corrupt"))
          fired.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(fired.load(), 1);
  FaultInjector::disarm();
}

}  // namespace
}  // namespace fusedp
