// The serving front door: option validation, bit-identical replies on both
// execution modes (coalesced and sharded), concurrent clients, bounded
// admission, per-request deadlines, governor admission under concurrent
// services, and drain-on-destruction.  Everything coded, nothing thrown.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "api/serve.hpp"
#include "fusion/incremental.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "runtime/governor.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

struct Fixture {
  PipelineSpec spec;
  std::vector<Buffer> inputs;
  std::vector<Buffer> want;  // reference outputs, pl.outputs() order

  explicit Fixture(const char* key, std::int64_t scale)
      : spec(make_benchmark(key, scale)) {
    inputs = spec.make_inputs();
    const CostModel model(*spec.pipeline, MachineModel::host());
    IncFusion inc(*spec.pipeline, model);
    want = run_pipeline(*spec.pipeline, inc.run(), inputs, ExecOptions{});
  }
};

bool reply_matches(const ServeReply& reply, const std::vector<Buffer>& want) {
  if (reply.outputs.size() != want.size()) return false;
  for (std::size_t i = 0; i < want.size(); ++i)
    if (!testing::buffers_equal(reply.outputs[i], want[i])) return false;
  return true;
}

TEST(Serve, CreateValidatesOptions) {
  const PipelineSpec spec = make_benchmark("unsharp", 16);
  struct Bad {
    const char* what;
    ServeOptions opts;
  };
  std::vector<Bad> cases(5);
  cases[0].what = "workers";
  cases[0].opts.workers = 0;
  cases[1].what = "max_queue";
  cases[1].opts.max_queue = 0;
  cases[2].what = "workspaces";
  cases[2].opts.workspaces = -1;
  cases[3].what = "shard_threshold_pixels";
  cases[3].opts.shard_threshold_pixels = -1;
  cases[4].what = "default_deadline_seconds";
  cases[4].opts.default_deadline_seconds = -0.5;
  for (const Bad& b : cases) {
    auto r = PipelineService::create(*spec.pipeline, b.opts);
    ASSERT_FALSE(r.ok()) << b.what;
    EXPECT_EQ(r.code(), ErrorCode::kInvalidArgument) << b.what;
    EXPECT_NE(std::string(r.error().what()).find(b.what), std::string::npos)
        << r.error().what();
  }
}

TEST(Serve, CoalescedReplyBitIdenticalToReference) {
  const Fixture f("unsharp", 16);
  ServeOptions so;
  so.workers = 2;
  so.shard_threshold_pixels = std::int64_t{1} << 60;  // force coalesced
  auto svc = PipelineService::create(*f.spec.pipeline, so);
  ASSERT_TRUE(svc.ok()) << svc.error().what();
  EXPECT_FALSE(svc.value()->sharded());

  ServeRequest req;
  req.inputs = f.inputs;
  Result<ServeReply> reply = svc.value()->call(std::move(req));
  ASSERT_TRUE(reply.ok()) << reply.error().what();
  EXPECT_TRUE(reply_matches(reply.value(), f.want));
  EXPECT_GE(reply.value().seconds, 0.0);
  EXPECT_GE(reply.value().queue_wait_seconds, 0.0);

  const ServeStats st = svc.value()->stats();
  EXPECT_EQ(st.accepted, 1);
  EXPECT_EQ(st.completed, 1);
  EXPECT_EQ(st.coalesced, 1);
  EXPECT_EQ(st.sharded, 0);
  EXPECT_EQ(st.rejected, 0);
}

TEST(Serve, ShardedReplyBitIdenticalToReference) {
  const Fixture f("unsharp", 16);
  ServeOptions so;
  so.workers = 3;
  so.shard_threshold_pixels = 1;  // force sharding
  auto svc = PipelineService::create(*f.spec.pipeline, so);
  ASSERT_TRUE(svc.ok()) << svc.error().what();
  EXPECT_TRUE(svc.value()->sharded());

  ServeRequest req;
  req.inputs = f.inputs;
  Result<ServeReply> reply = svc.value()->call(std::move(req));
  ASSERT_TRUE(reply.ok()) << reply.error().what();
  EXPECT_TRUE(reply_matches(reply.value(), f.want));
  const ServeStats st = svc.value()->stats();
  EXPECT_EQ(st.sharded, 1);
  EXPECT_EQ(st.coalesced, 0);
}

TEST(Serve, ConcurrentClientsAllVerify) {
  const Fixture f("unsharp", 16);
  ServeOptions so;
  so.workers = 2;
  so.max_queue = 64;
  auto svc_r = PipelineService::create(*f.spec.pipeline, so);
  ASSERT_TRUE(svc_r.ok()) << svc_r.error().what();
  PipelineService* svc = svc_r.value().get();

  constexpr int kClients = 4;
  constexpr int kRequests = 5;
  std::atomic<int> ok{0}, mismatched{0}, failed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequests; ++r) {
        ServeRequest req;
        req.inputs = f.inputs;
        // Mix the dispatch classes: priority must never change results.
        req.priority = (c + r) % 2 == 0 ? TaskPriority::kInteractive
                                        : TaskPriority::kBulk;
        Result<ServeReply> reply = svc->call(std::move(req));
        if (!reply.ok())
          failed.fetch_add(1);
        else if (reply_matches(reply.value(), f.want))
          ok.fetch_add(1);
        else
          mismatched.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients * kRequests);
  EXPECT_EQ(mismatched.load(), 0);
  EXPECT_EQ(failed.load(), 0);
  const ServeStats st = svc->stats();
  EXPECT_EQ(st.accepted, kClients * kRequests);
  EXPECT_EQ(st.completed, kClients * kRequests);
}

TEST(Serve, AdmissionBoundRejectsWhenFull) {
  const Fixture f("campipe", 8);  // a few ms per frame: requests pile up
  ServeOptions so;
  so.workers = 1;
  so.max_queue = 2;
  auto svc_r = PipelineService::create(*f.spec.pipeline, so);
  ASSERT_TRUE(svc_r.ok()) << svc_r.error().what();
  PipelineService* svc = svc_r.value().get();

  constexpr int kBurst = 8;
  std::vector<PipelineService::Ticket> tickets;
  int rejected = 0;
  for (int i = 0; i < kBurst; ++i) {
    ServeRequest req;
    req.inputs = f.inputs;
    Result<PipelineService::Ticket> t = svc->submit(std::move(req));
    if (t.ok()) {
      tickets.push_back(std::move(t).value());
    } else {
      ++rejected;
      EXPECT_EQ(t.code(), ErrorCode::kResourceExhausted);
      EXPECT_NE(std::string(t.error().what()).find("serve queue full"),
                std::string::npos);
    }
  }
  // The burst outruns a single worker: with at most 2 in flight and frames
  // taking milliseconds, most of the 8 back-to-back submissions must bounce.
  EXPECT_GE(rejected, 1);
  int completed = 0;
  for (PipelineService::Ticket& t : tickets) {
    Result<ServeReply> reply = t.wait();
    ASSERT_TRUE(reply.ok()) << reply.error().what();
    EXPECT_TRUE(reply_matches(reply.value(), f.want));
    ++completed;
  }
  const ServeStats st = svc->stats();
  EXPECT_EQ(st.accepted + st.rejected, kBurst);
  EXPECT_EQ(st.rejected, rejected);
  EXPECT_EQ(st.completed, completed);
  EXPECT_EQ(st.failed, 0);
}

TEST(Serve, PerRequestDeadlineIsCoded) {
  const Fixture f("harris", 8);
  ServeOptions so;
  so.workers = 2;
  auto svc_r = PipelineService::create(*f.spec.pipeline, so);
  ASSERT_TRUE(svc_r.ok()) << svc_r.error().what();
  PipelineService* svc = svc_r.value().get();

  ServeRequest req;
  req.inputs = f.inputs;
  req.deadline_seconds = 1e-6;  // expires during queue wait / first tiles
  Result<ServeReply> reply = svc->call(std::move(req));
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(svc->stats().failed, 1);

  // The same service keeps serving cleanly afterwards (pooled workspace
  // survived the cancelled run).
  ServeRequest again;
  again.inputs = f.inputs;
  Result<ServeReply> clean = svc->call(std::move(again));
  ASSERT_TRUE(clean.ok()) << clean.error().what();
  EXPECT_TRUE(reply_matches(clean.value(), f.want));
}

TEST(Serve, GovernorAdmissionUnderConcurrentServices) {
  // Two services (distinct pipelines) sharing the process-wide governor
  // under a budget far below one workspace: every request must terminate
  // coded kResourceExhausted — never a crash, never an uncoded throw — and
  // lifting the budget afterwards restores full verified service.
  const Fixture a("unsharp", 16);
  const Fixture b("harris", 16);
  ServeOptions so;
  so.workers = 2;
  auto sa = PipelineService::create(*a.spec.pipeline, so);
  auto sb = PipelineService::create(*b.spec.pipeline, so);
  ASSERT_TRUE(sa.ok()) << sa.error().what();
  ASSERT_TRUE(sb.ok()) << sb.error().what();

  ResourceGovernor& gov = ResourceGovernor::instance();
  gov.reset_for_test();
  gov.set_budget(16 * 1024);  // far below any workspace here

  std::atomic<int> coded{0}, wrong{0};
  auto hammer = [&](PipelineService* svc, const Fixture* f) {
    for (int i = 0; i < 4; ++i) {
      ServeRequest req;
      req.inputs = f->inputs;
      Result<ServeReply> reply = svc->call(std::move(req));
      if (!reply.ok() && reply.code() == ErrorCode::kResourceExhausted)
        coded.fetch_add(1);
      else
        wrong.fetch_add(1);
    }
  };
  std::thread ta(hammer, sa.value().get(), &a);
  std::thread tb(hammer, sb.value().get(), &b);
  ta.join();
  tb.join();
  gov.set_budget(0);  // restore: unlimited

  EXPECT_EQ(coded.load(), 8);
  EXPECT_EQ(wrong.load(), 0);

  // With the budget lifted both services serve verified replies again.
  for (auto* pair : {&a, &b}) {
    PipelineService* svc = (pair == &a ? sa : sb).value().get();
    ServeRequest req;
    req.inputs = pair->inputs;
    Result<ServeReply> reply = svc->call(std::move(req));
    ASSERT_TRUE(reply.ok()) << reply.error().what();
    EXPECT_TRUE(reply_matches(reply.value(), pair->want));
  }
}

TEST(Serve, DestructorDrainsInFlightRequests) {
  const Fixture f("unsharp", 16);
  std::vector<PipelineService::Ticket> tickets;
  {
    ServeOptions so;
    so.workers = 2;
    so.max_queue = 16;
    auto svc_r = PipelineService::create(*f.spec.pipeline, so);
    ASSERT_TRUE(svc_r.ok()) << svc_r.error().what();
    for (int i = 0; i < 6; ++i) {
      ServeRequest req;
      req.inputs = f.inputs;
      Result<PipelineService::Ticket> t = svc_r.value()->submit(std::move(req));
      ASSERT_TRUE(t.ok()) << t.error().what();
      tickets.push_back(std::move(t).value());
    }
    // Service destroyed here with requests still in flight: the destructor
    // must block until every admitted request has been fulfilled.
  }
  for (PipelineService::Ticket& t : tickets) {
    Result<ServeReply> reply = t.wait();  // must not hang or crash
    ASSERT_TRUE(reply.ok()) << reply.error().what();
    EXPECT_TRUE(reply_matches(reply.value(), f.want));
  }
}

}  // namespace
}  // namespace fusedp
