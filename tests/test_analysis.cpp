// Tests for scaling/alignment, required-region propagation, and reuse
// analysis — including the blur trapezoid of paper Figure 2 and the
// owned-boxes-partition-the-domain property that tile correctness rests on.
#include <gtest/gtest.h>

#include "analysis/regions.hpp"
#include "analysis/reuse.hpp"
#include "analysis/scaling.hpp"
#include "pipelines/pipelines.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

NodeSet all_stages(const Pipeline& pl) {
  NodeSet s;
  for (int i = 0; i < pl.num_stages(); ++i) s = s.with(i);
  return s;
}

TEST(ScalingTest, IdentityChainAligns) {
  const PipelineSpec spec = make_blur(64, 64);
  const AlignResult align = solve_alignment(*spec.pipeline, all_stages(*spec.pipeline));
  ASSERT_TRUE(align.constant);
  EXPECT_FALSE(align.hard_conflict);
  EXPECT_EQ(align.num_classes, 3);
  for (int s = 0; s < 2; ++s)
    for (int d = 0; d < 3; ++d) {
      const DimAlign& da = align.stages[static_cast<std::size_t>(s)]
                               .dim[static_cast<std::size_t>(d)];
      EXPECT_EQ(da.sn, 1);
      EXPECT_EQ(da.sd, 1);
    }
  EXPECT_EQ(align.class_extent[1], 64);
  EXPECT_EQ(align.class_granularity[1], 1);
}

TEST(ScalingTest, DownsampleChainScales) {
  // premult(0) -> downx1(1) -> down1(2): down accesses use num=2.
  const PipelineSpec spec = make_interpolate(64, 64);
  const Pipeline& pl = *spec.pipeline;
  const NodeSet group = NodeSet::single(0).with(1).with(2);
  const AlignResult align = solve_alignment(pl, group);
  ASSERT_TRUE(align.constant);
  // Stage 2 (down1, half resolution) must be stretched 2x into reference
  // coordinates along both spatial dims.
  const StageAlign& sa = align.stages[2];
  EXPECT_EQ(sa.dim[1].sn, 2);
  EXPECT_EQ(sa.dim[1].sd, 1);
  EXPECT_EQ(sa.dim[2].sn, 2);
  // Reference space spans the full-resolution extents.
  const DimAlign& ref1 = align.stages[0].dim[1];
  EXPECT_EQ(align.class_extent[static_cast<std::size_t>(ref1.cls)], 64);
}

TEST(ScalingTest, UpsampleGranularity) {
  // interp1 group {upx1=45? ...} - use pyramid: colupx reads col with den=2.
  const PipelineSpec spec = make_pyramid_blend(64, 64);
  const Pipeline& pl = *spec.pipeline;
  // Find the "out" stage (reads col1 with den=2) and col1.
  int out_id = -1, col1_id = -1;
  for (const Stage& s : pl.stages()) {
    if (s.name == "out") out_id = s.id;
    if (s.name == "col1") col1_id = s.id;
  }
  ASSERT_GE(out_id, 0);
  ASSERT_GE(col1_id, 0);
  const AlignResult align =
      solve_alignment(pl, NodeSet::single(out_id).with(col1_id));
  ASSERT_TRUE(align.constant);
  // col1 (coarser) is stretched 2x; tile granularity along the spatial
  // classes must be 2 so tile edges land on col1 pixels.
  const StageAlign& sa = align.stages[static_cast<std::size_t>(out_id)];
  const int cls = sa.dim[1].cls;
  EXPECT_EQ(align.class_granularity[static_cast<std::size_t>(cls)], 2);
}

TEST(ScalingTest, DynamicAccessIsHardConflict) {
  const PipelineSpec spec = make_bilateral(64, 64);
  const Pipeline& pl = *spec.pipeline;
  // blurx (3) -> slice_num (4) crosses the dynamic z access.
  const AlignResult align = solve_alignment(pl, NodeSet::single(3).with(4));
  EXPECT_FALSE(align.constant);
  EXPECT_TRUE(align.hard_conflict);
}

TEST(ScalingTest, ReductionGroupIsHardConflict) {
  const PipelineSpec spec = make_bilateral(64, 64);
  const AlignResult align =
      solve_alignment(*spec.pipeline, NodeSet::single(0).with(1));
  EXPECT_FALSE(align.constant);
  EXPECT_TRUE(align.hard_conflict);
}

TEST(ScalingTest, SingletonAlwaysConstant) {
  const PipelineSpec spec = make_bilateral(64, 64);
  for (int s = 0; s < spec.pipeline->num_stages(); ++s)
    EXPECT_TRUE(constant_dependence_vectors(*spec.pipeline, NodeSet::single(s)))
        << "stage " << s;
}

TEST(RegionsTest, MapAccessBoxAffine) {
  const PipelineSpec spec = make_blur(64, 64);
  const Pipeline& pl = *spec.pipeline;
  // blury reads blurx at y-1..y+1.
  Box cbox = Box::dense({3, 8, 8});
  cbox.lo[2] = 16;
  cbox.hi[2] = 23;
  const Stage& blury = pl.stage(1);
  Box lo_hull, hi_hull;
  bool first = true;
  for (const Access& a : blury.loads) {
    const Box b = map_access_box(pl, a, cbox);
    lo_hull = first ? b : lo_hull.hull(b);
    first = false;
  }
  EXPECT_EQ(lo_hull.lo[2], 15);
  EXPECT_EQ(lo_hull.hi[2], 24);
}

TEST(RegionsTest, MapAccessBoxScaledAndPre) {
  Pipeline pl("p");
  const int img = pl.add_input("img", {64});
  StageBuilder a(pl, pl.add_stage("a", {64}));
  a.define(a.in(img, {0}));
  StageBuilder b(pl, pl.add_stage("b", {128}));
  // b(x) reads a(floor((x+1)/2)).
  b.define(b.load({false, 0}, {AxisMap::affine(0, 0, 1, 2, 1)}));
  pl.finalize();
  Box cbox;
  cbox.rank = 1;
  cbox.lo[0] = 10;
  cbox.hi[0] = 13;
  const Box pbox = map_access_box(pl, pl.stage(1).loads[0], cbox);
  EXPECT_EQ(pbox.lo[0], 5);  // floor(11/2)
  EXPECT_EQ(pbox.hi[0], 7);  // floor(14/2)
}

TEST(RegionsTest, BlurTrapezoidOverlap) {
  // Paper Figure 2: fusing blurx+blury with overlapped tiling recomputes a
  // 1-pixel halo of blurx on each side of the tile along y.
  const PipelineSpec spec = make_blur(64, 256);
  const Pipeline& pl = *spec.pipeline;
  const NodeSet group = all_stages(pl);
  const AlignResult align = solve_alignment(pl, group);
  Box tile;  // interior 3 x 16 x 32 tile
  tile.rank = 3;
  tile.lo[0] = 0; tile.hi[0] = 2;
  tile.lo[1] = 16; tile.hi[1] = 31;
  tile.lo[2] = 64; tile.hi[2] = 95;
  const GroupRegions r =
      compute_group_regions(pl, group, align, tile, /*clamp=*/false);
  // blury computes exactly the tile; blurx needs the tile plus y +/- 1.
  EXPECT_EQ(r.stages[1].required.volume(), 3 * 16 * 32);
  EXPECT_EQ(r.stages[0].required.volume(), 3 * 16 * 34);
  EXPECT_EQ(r.overlap_volume, 3 * 16 * 2);
  EXPECT_EQ(r.computed_volume, 3 * 16 * 32 + 3 * 16 * 34);
  EXPECT_EQ(r.liveout_volume, 3 * 16 * 32);
}

TEST(RegionsTest, OwnedBoxesPartitionDomain) {
  // Property: for every stage of a fused group, the owned boxes of all tiles
  // partition the stage domain exactly (no gaps, no overlaps).
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto pl = testing::random_pipeline(6, 40, 48, seed, /*scaling=*/true);
    const NodeSet group = all_stages(*pl);
    const AlignResult align = solve_alignment(*pl, group);
    if (!align.constant) continue;
    // Tile the reference space with granularity-respecting tiles.
    std::vector<std::int64_t> ts(static_cast<std::size_t>(align.num_classes));
    for (int d = 0; d < align.num_classes; ++d)
      ts[static_cast<std::size_t>(d)] = std::max<std::int64_t>(
          align.class_granularity[static_cast<std::size_t>(d)] * 7,
          align.class_granularity[static_cast<std::size_t>(d)]);
    std::vector<std::int64_t> counts(ts.size());
    std::int64_t total = 1;
    for (int d = 0; d < align.num_classes; ++d) {
      counts[static_cast<std::size_t>(d)] = ceil_div(
          align.class_extent[static_cast<std::size_t>(d)],
          ts[static_cast<std::size_t>(d)]);
      total *= counts[static_cast<std::size_t>(d)];
    }
    group.for_each([&](int s) {
      Buffer cover(pl->stage(s).domain.extents());
      for (std::int64_t t = 0; t < total; ++t) {
        Box tile;
        tile.rank = align.num_classes;
        std::int64_t rem = t;
        for (int d = align.num_classes - 1; d >= 0; --d) {
          const std::int64_t idx = rem % counts[static_cast<std::size_t>(d)];
          rem /= counts[static_cast<std::size_t>(d)];
          tile.lo[d] = idx * ts[static_cast<std::size_t>(d)];
          tile.hi[d] = std::min(
              tile.lo[d] + ts[static_cast<std::size_t>(d)] - 1,
              align.class_extent[static_cast<std::size_t>(d)] - 1);
        }
        Box owned = owned_box(pl->stage(s), align, tile);
        owned = owned.intersect(pl->stage(s).domain);
        if (owned.empty()) continue;
        std::int64_t c[kMaxDims];
        for (int d = 0; d < owned.rank; ++d) c[d] = owned.lo[d];
        for (;;) {
          float* cell = &cover.data()[0];
          std::int64_t off = 0;
          for (int d = 0; d < owned.rank; ++d)
            off = off * pl->stage(s).domain.extent(d) + c[d];
          cell[off] += 1.0f;
          int d = owned.rank - 1;
          for (; d >= 0; --d) {
            if (++c[d] <= owned.hi[d]) break;
            c[d] = owned.lo[d];
          }
          if (d < 0) break;
        }
      }
      for (std::int64_t i = 0; i < cover.volume(); ++i)
        ASSERT_EQ(cover.data()[i], 1.0f)
            << "stage " << s << " element " << i << " covered "
            << cover.data()[i] << " times (seed " << seed << ")";
    });
  }
}

TEST(RegionsTest, RequiredContainsOwned) {
  const PipelineSpec spec = make_harris(48, 64);
  const Pipeline& pl = *spec.pipeline;
  const NodeSet group = all_stages(pl);
  const AlignResult align = solve_alignment(pl, group);
  ASSERT_TRUE(align.constant);
  Box tile;
  tile.rank = align.num_classes;
  for (int d = 0; d < tile.rank; ++d) {
    tile.lo[d] = 0;
    tile.hi[d] = 15;
  }
  const GroupRegions r =
      compute_group_regions(pl, group, align, tile, /*clamp=*/true);
  group.for_each([&](int s) {
    const StageRegions& sr = r.stages[static_cast<std::size_t>(s)];
    if (!sr.owned.empty()) {
      EXPECT_TRUE(sr.required.contains(sr.owned)) << pl.stage(s).name;
    }
  });
  EXPECT_GT(r.overlap_volume, 0);  // harris has plenty of stencil halo
}

TEST(RegionsTest, LiveinUsesHullNotTapCount) {
  const PipelineSpec spec = make_blur(64, 64);
  const Pipeline& pl = *spec.pipeline;
  const AlignResult align = solve_alignment(pl, NodeSet::single(0));
  Box tile;
  tile.rank = 3;
  tile.lo[0] = 0; tile.hi[0] = 2;
  tile.lo[1] = 8; tile.hi[1] = 23;
  tile.lo[2] = 8; tile.hi[2] = 23;
  const GroupRegions r = compute_group_regions(pl, NodeSet::single(0), align,
                                               tile, /*clamp=*/false);
  // blurx reads img at x-1..x+1: hull is (16+2) x 16, not 3x the tile.
  EXPECT_EQ(r.livein_volume, 3 * 18 * 16);
}

TEST(ReuseTest, StencilDirectionGetsMoreReuse) {
  // blurx reads img along x (dim 1); fused blur group reads blurx along y
  // (dim 2).  Innermost also gets spatial credit.
  const PipelineSpec spec = make_blur(64, 64);
  const Pipeline& pl = *spec.pipeline;
  const NodeSet group = all_stages(pl);
  const AlignResult align = solve_alignment(pl, group);
  const ReuseInfo reuse = compute_reuse(pl, group, align);
  ASSERT_EQ(reuse.dim_reuse.size(), 3u);
  EXPECT_GT(reuse.dim_reuse[1], reuse.dim_reuse[0]);  // x-stencil beats c
  EXPECT_GT(reuse.dim_reuse[2], reuse.dim_reuse[0]);  // y-stencil + spatial
  EXPECT_EQ(reuse.dim_sizes[1], 64);
  EXPECT_DOUBLE_EQ(reuse.dim_size_stddev, 0.0);  // equal extents everywhere
}

TEST(ReuseTest, CleanPyramidLevelsAlignToZeroStddev) {
  // A clean 2x downsample chain aligns to identical reference extents —
  // scaling exists precisely to cancel resolution differences.
  const PipelineSpec spec = make_interpolate(64, 64);
  const Pipeline& pl = *spec.pipeline;
  const NodeSet group = NodeSet::single(0).with(1).with(2);
  const AlignResult align = solve_alignment(pl, group);
  ASSERT_TRUE(align.constant);
  const ReuseInfo reuse = compute_reuse(pl, group, align);
  EXPECT_DOUBLE_EQ(reuse.dim_size_stddev, 0.0);
}

TEST(ReuseTest, MismatchedExtentsRaiseStddev) {
  // A consumer with a genuinely smaller domain (a crop) leaves a residual
  // extent mismatch that the w4 term penalizes.
  Pipeline pl("crop");
  const int img = pl.add_input("img", {64, 64});
  StageBuilder a(pl, pl.add_stage("a", {64, 64}));
  a.define(a.in(img, {0, 0}) * 2.0f);
  StageBuilder b(pl, pl.add_stage("b", {40, 64}));  // cropped consumer
  b.define(b.at(a.stage(), {0, 0}) + 1.0f);
  pl.finalize();
  const NodeSet group = NodeSet::single(0).with(1);
  const AlignResult align = solve_alignment(pl, group);
  ASSERT_TRUE(align.constant);
  const ReuseInfo reuse = compute_reuse(pl, group, align);
  EXPECT_GT(reuse.dim_size_stddev, 0.0);
}

}  // namespace
}  // namespace fusedp
