// FindbRace: concurrency soaks for the persistent schedule cache — many
// threads opening Sessions through one cache directory, raw FindDb
// store/probe hammering, and a forked two-process writer/reader race.
//
// The invariants: no crash, no uncoded exception, every probe resolves to
// a coded outcome, and every served schedule opens a working session.  The
// TSan CI leg runs exactly this binary (suite name "FindbRace" keys the
// ctest regex), so keep the fork test fork-before-threads: the children
// are single-threaded and exit via _exit.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "pipelines/pipelines.hpp"
#include "storage/findb.hpp"
#include "support/fingerprint.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/fusedp_findb_race_XXXXXX";
    char* p = ::mkdtemp(buf);
    EXPECT_NE(p, nullptr);
    path = p ? p : "";
  }
  ~TempDir() {
    if (!path.empty()) {
      std::string cmd = "rm -rf '" + path + "'";
      [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
  }
};

findb::CacheRecord small_record(const char* rung) {
  findb::CacheRecord rec;
  rec.pipeline = "race";
  rec.rung = rung;
  rec.predicted = {1.0};
  rec.schedule_text = "fusedp-schedule v1\ngroups 1\n";
  return rec;
}

// The two-process race MUST fork before any test in this binary spawns
// threads (TSan and fork do not mix with live threads), so it runs first:
// gtest executes tests in declaration order within a file.
TEST(FindbRaceTest, TwoProcessWriterReaderRace) {
  TempDir dir;
  findb::FindDb::clear_memory_tier();
  const findb::CacheKey key{0xAAAAAAAAAAAAAAAAull, 0xBBBBBBBBBBBBBBBBull,
                            0xCCCCCCCCCCCCCCCCull};

  findb::FindbOptions fo;
  fo.dir = dir.path;
  fo.mode = findb::CacheMode::kReadWrite;
  fo.memory_entries = 0;  // every probe goes to disk: the race under test
  fo.lock_timeout_seconds = 5.0;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: hammer stores of alternating records.  Plain _exit codes, no
    // gtest machinery in the child.
    findb::FindDb db(fo);
    for (int i = 0; i < 200; ++i) {
      auto st = db.store(key, small_record(i % 2 == 0 ? "greedy" : "full-dp"));
      if (!st.ok() && st.error().code() != ErrorCode::kDeadlineExceeded)
        ::_exit(10);  // only lock timeouts are acceptable store failures
    }
    ::_exit(0);
  }

  // Parent: probe continuously for as long as the writer lives.  Every
  // probe must see kMiss (before the first store lands) or a fully valid
  // kHit — never a torn or corrupt record.
  findb::FindDb db(fo);
  int hits = 0;
  int status = 0;
  bool child_done = false;
  while (!child_done) {
    const pid_t w = ::waitpid(pid, &status, WNOHANG);
    ASSERT_NE(w, -1);
    child_done = (w == pid);
    findb::ProbeResult pr = db.probe(key);
    if (pr.outcome == findb::ProbeOutcome::kHit) {
      ++hits;
      ASSERT_EQ(pr.record.pipeline, "race");
      ASSERT_TRUE(pr.record.rung == "greedy" || pr.record.rung == "full-dp")
          << pr.record.rung;
    } else {
      ASSERT_TRUE(pr.outcome == findb::ProbeOutcome::kMiss ||
                  pr.outcome == findb::ProbeOutcome::kLockTimeout)
          << findb::probe_outcome_name(pr.outcome) << ": " << pr.detail;
    }
  }
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child store failed uncoded";
  // The child stored 200 times; the settled record must be a clean hit.
  EXPECT_EQ(db.probe(key).outcome, findb::ProbeOutcome::kHit);
  EXPECT_GT(hits, 0);
}

TEST(FindbRaceTest, ManyThreadsOneFindDb) {
  TempDir dir;
  findb::FindDb::clear_memory_tier();
  findb::FindbOptions fo;
  fo.dir = dir.path;
  fo.mode = findb::CacheMode::kReadWrite;
  fo.memory_entries = 4;
  fo.max_entries = 8;  // compaction races with stores and probes
  fo.lock_timeout_seconds = 5.0;
  findb::FindDb db(fo);

  constexpr int kThreads = 8;
  constexpr int kIters = 60;
  std::atomic<int> uncoded{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &uncoded, t] {
      for (int i = 0; i < kIters; ++i) {
        const findb::CacheKey key{static_cast<std::uint64_t>(i % 12) + 1,
                                  2, 3};
        try {
          if ((t + i) % 3 == 0) {
            (void)db.store(key, small_record("greedy"));
          } else {
            findb::ProbeResult pr = db.probe(key);
            if (pr.outcome == findb::ProbeOutcome::kHit &&
                pr.record.pipeline != "race")
              ++uncoded;  // torn record served
          }
        } catch (...) {
          ++uncoded;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(uncoded.load(), 0);
  // Compaction kept the directory inside its budget throughout.
  auto scan = db.scan();
  ASSERT_TRUE(scan.ok());
  EXPECT_LE(static_cast<std::int64_t>(scan.value().size()), fo.max_entries);
  findb::FindDb::clear_memory_tier();
}

// The full stack under thread pressure: concurrent Session::opens sharing
// one cache directory.  Exactly one cold search is not guaranteed (several
// opens may race past a miss before the first store lands), but every open
// must succeed and later opens must go warm.
TEST(FindbRaceTest, ConcurrentSessionOpensShareOneCacheDir) {
  TempDir dir;
  findb::FindDb::clear_memory_tier();
  PipelineSpec spec = make_benchmark("unsharp", 16);

  auto opts = [&] {
    Options o;
    o.scheduler = Scheduler::kGreedy;
    o.cache_mode = findb::CacheMode::kReadWrite;
    o.cache_dir = dir.path;
    o.cache_lock_timeout_seconds = 5.0;
    return o;
  }();

  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  std::atomic<int> warm{0};
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        auto s = Session::open(*spec.pipeline, opts);
        if (!s.ok()) {
          ++failures;
          return;
        }
        if (s.value().warm_start()) ++warm;
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Steady state: the next open is warm and bit-identical to cache-off.
  auto warm_open = Session::open(*spec.pipeline, opts);
  ASSERT_TRUE(warm_open.ok()) << warm_open.error().what();
  Session warm_s = std::move(warm_open).value();
  EXPECT_TRUE(warm_s.warm_start());

  Options off;
  off.scheduler = Scheduler::kGreedy;
  auto ref = Session::open(*spec.pipeline, off);
  ASSERT_TRUE(ref.ok());
  Session ref_s = std::move(ref).value();
  const std::vector<Buffer> inputs = spec.make_inputs();
  auto a = ref_s.run(inputs);
  auto b = warm_s.run(inputs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a.value().size(); ++i)
    EXPECT_TRUE(testing::buffers_equal(a.value()[i], b.value()[i]));
  findb::FindDb::clear_memory_tier();
}

}  // namespace
}  // namespace fusedp
