// Border-mode tests: fold_coord semantics, evaluator agreement, region
// folding, and the schedule-independence invariant under every border mode.
#include <gtest/gtest.h>

#include <cstring>

#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

TEST(FoldCoordTest, ClampSemantics) {
  EXPECT_EQ(fold_coord(-5, 0, 9, Border::kClamp), 0);
  EXPECT_EQ(fold_coord(12, 0, 9, Border::kClamp), 9);
  EXPECT_EQ(fold_coord(4, 0, 9, Border::kClamp), 4);
}

TEST(FoldCoordTest, MirrorSemantics) {
  // Reflect-101 on [0,9]: -1 -> 1, -2 -> 2, 10 -> 8, 11 -> 7.
  EXPECT_EQ(fold_coord(-1, 0, 9, Border::kMirror), 1);
  EXPECT_EQ(fold_coord(-2, 0, 9, Border::kMirror), 2);
  EXPECT_EQ(fold_coord(10, 0, 9, Border::kMirror), 8);
  EXPECT_EQ(fold_coord(11, 0, 9, Border::kMirror), 7);
  // Far out-of-range folds periodically (period 18).
  EXPECT_EQ(fold_coord(-19, 0, 9, Border::kMirror),
            fold_coord(-1, 0, 9, Border::kMirror));
  EXPECT_EQ(fold_coord(28, 0, 9, Border::kMirror),
            fold_coord(10, 0, 9, Border::kMirror));
  // Degenerate one-element domain.
  EXPECT_EQ(fold_coord(100, 3, 3, Border::kMirror), 3);
}

TEST(FoldCoordTest, WrapSemantics) {
  EXPECT_EQ(fold_coord(-1, 0, 9, Border::kWrap), 9);
  EXPECT_EQ(fold_coord(10, 0, 9, Border::kWrap), 0);
  EXPECT_EQ(fold_coord(23, 0, 9, Border::kWrap), 3);
  EXPECT_EQ(fold_coord(-13, 0, 9, Border::kWrap), 7);
}

TEST(FoldCoordTest, NonZeroDomainLow) {
  EXPECT_EQ(fold_coord(1, 2, 5, Border::kMirror), 3);
  EXPECT_EQ(fold_coord(1, 2, 5, Border::kWrap), 5);
  EXPECT_EQ(fold_coord(6, 2, 5, Border::kClamp), 5);
}

// Builds a 2-stage pipeline where the second stage reads the first with the
// given border and large offsets, and checks tiled-vs-reference equality.
void expect_border_schedule_independence(Border border, std::uint64_t seed) {
  Pipeline pl("border");
  const int img = pl.add_input("img", {24, 30});
  StageBuilder a(pl, pl.add_stage("a", {24, 30}));
  a.define(a.in(img, {0, 0}) * 1.5f + 0.1f);
  StageBuilder b(pl, pl.add_stage("b", {24, 30}));
  b.set_border(border);
  b.define(b.at(a.stage(), {-4, 3}) + b.at(a.stage(), {5, -6}) * 0.5f +
           b.at(a.stage(), {0, 29}));
  pl.finalize();

  std::vector<Buffer> inputs;
  inputs.push_back(make_synthetic_image({24, 30}, seed));
  const std::vector<Buffer> ref = run_reference(pl, inputs);

  Rng rng(seed);
  for (int trial = 0; trial < 6; ++trial) {
    Grouping g;
    GroupSchedule gs;
    gs.stages = NodeSet::single(0).with(1);
    gs.tile_sizes = {1 + static_cast<std::int64_t>(rng.next_below(25)),
                     1 + static_cast<std::int64_t>(rng.next_below(31))};
    g.groups = {gs};
    ExecOptions opts;
    opts.num_threads = 2;
    const std::vector<Buffer> outs = run_pipeline(pl, g, inputs, opts);
    const std::int64_t bad = testing::first_mismatch(outs[0], ref[1]);
    ASSERT_LT(bad, 0) << "border mode " << static_cast<int>(border)
                      << " trial " << trial << " tiles "
                      << gs.tile_sizes[0] << "x" << gs.tile_sizes[1]
                      << " differs at " << bad;
  }
}

TEST(BorderTest, ClampTiledMatchesReference) {
  expect_border_schedule_independence(Border::kClamp, 11);
}
TEST(BorderTest, MirrorTiledMatchesReference) {
  expect_border_schedule_independence(Border::kMirror, 12);
}
TEST(BorderTest, WrapTiledMatchesReference) {
  expect_border_schedule_independence(Border::kWrap, 13);
}
TEST(BorderTest, ZeroTiledMatchesReference) {
  expect_border_schedule_independence(Border::kZero, 14);
}

TEST(BorderTest, ZeroBorderYieldsZeros) {
  Pipeline pl("z");
  const int img = pl.add_input("img", {8, 8});
  StageBuilder s(pl, pl.add_stage("s", {8, 8}));
  s.set_border(Border::kZero);
  s.define(s.in(img, {0, 100}));  // entirely out of range
  pl.finalize();
  std::vector<Buffer> inputs;
  inputs.push_back(make_synthetic_image({8, 8}, 5));
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  for (std::int64_t i = 0; i < ref[0].volume(); ++i)
    EXPECT_EQ(ref[0].data()[i], 0.0f);
}

TEST(BorderTest, WrapBlurOnPeriodicSignalIsExact) {
  // A wrap-border 3-tap average over a periodic ramp has no edge artifacts:
  // output at column 0 must equal output at column W (same phase).
  constexpr std::int64_t kW = 12;
  Pipeline pl("w");
  const int img = pl.add_input("img", {4, kW});
  StageBuilder s(pl, pl.add_stage("s", {4, kW}));
  s.set_border(Border::kWrap);
  s.define((s.in(img, {0, -1}) + s.in(img, {0, 0}) + s.in(img, {0, 1})) /
           3.0f);
  pl.finalize();
  Buffer in({4, kW});
  for (std::int64_t x = 0; x < 4; ++x)
    for (std::int64_t y = 0; y < kW; ++y)
      in.at({x, y}) = static_cast<float>((y * 3) % kW);
  std::vector<Buffer> inputs;
  inputs.push_back(std::move(in));
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  // Column 0 uses wrap tap y=-1 -> y=kW-1; compare against the interior
  // column with the same neighbourhood values (y=4: values 12%12=0 around).
  const Buffer& img0 = inputs[0];
  const float expect =
      (img0.at({0, kW - 1}) + img0.at({0, 0}) + img0.at({0, 1})) / 3.0f;
  EXPECT_EQ(ref[0].at({0, 0}), expect);
}

// Property: the row evaluator equals the scalar interpreter under every
// border mode for random stencils (exercises the general border gather).
class BorderEvalFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BorderEvalFuzz, EvaluatorsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
  const Border borders[] = {Border::kClamp, Border::kMirror, Border::kWrap,
                            Border::kZero};
  const Border border = borders[GetParam() % 4];
  Pipeline pl("f");
  const int img = pl.add_input("img", {10, 14});
  StageBuilder s(pl, pl.add_stage("s", {10, 14}));
  s.set_border(border);
  Eh acc = s.cst(0.0f);
  for (int t = 0; t < 4; ++t) {
    const std::int64_t dy = static_cast<std::int64_t>(rng.next_below(31)) - 15;
    const std::int64_t dx = static_cast<std::int64_t>(rng.next_below(31)) - 15;
    acc = acc + s.in(img, {dy, dx}) * (0.2f + 0.1f * static_cast<float>(t));
  }
  s.define(acc);
  pl.finalize();

  std::vector<Buffer> inputs;
  inputs.push_back(make_synthetic_image({10, 14},
                                        static_cast<std::uint64_t>(GetParam())));
  // Reference (scalar) vs a fused row-evaluated run over the same domain.
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  Grouping g;
  GroupSchedule gs;
  gs.stages = NodeSet::single(0);
  g.groups = {gs};
  ExecOptions opts;
  opts.mode = EvalMode::kRow;
  const std::vector<Buffer> outs = run_pipeline(pl, g, inputs, opts);
  EXPECT_TRUE(testing::buffers_equal(outs[0], ref[0]))
      << "border " << static_cast<int>(border);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BorderEvalFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace fusedp
