// Failure-path tests for the exception-safe executor: a fault raised inside
// a tile worker thread must surface as exactly one coded fusedp::Error on
// the calling thread (no std::terminate, no hang — without the executor's
// capture/rethrow latch these tests would abort the process, since an
// exception may not cross an OpenMP region boundary), and the Workspace
// must stay destructible and reusable afterwards.
#include <gtest/gtest.h>

#include "fusion/dp.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "support/fault.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

// Arms are process-global: always disarm, even when an assertion fails.
class FaultGuard {
 public:
  FaultGuard(const std::string& point, ErrorCode code, int skip = 0) {
    FaultInjector::arm(point, code, skip);
  }
  ~FaultGuard() { FaultInjector::disarm(); }
};

// A grouping with deliberately small tiles so every run has many tiles to
// hand out across threads.
Grouping tiny_tile_grouping(const Pipeline& pl) {
  Grouping g;
  GroupSchedule gs;
  for (int i = 0; i < pl.num_stages(); ++i) gs.stages = gs.stages.with(i);
  gs.tile_sizes = {2, 8, 16};
  g.groups.push_back(gs);
  return g;
}

ErrorCode run_and_capture_code(const Executor& ex,
                               const std::vector<Buffer>& inputs,
                               Workspace& ws) {
  try {
    ex.run(inputs, ws);
  } catch (const Error& e) {
    return e.code();
  } catch (...) {
    ADD_FAILURE() << "expected fusedp::Error, got another exception type";
    throw;
  }
  ADD_FAILURE() << "expected fusedp::Error, got clean completion";
  return ErrorCode::kInternal;
}

void expect_matches_reference(const Pipeline& pl, Workspace& ws,
                              const std::vector<Buffer>& ref) {
  for (int out : pl.outputs()) {
    const std::int64_t bad =
        testing::first_mismatch(ws.stage_buffer(out), ref[static_cast<std::size_t>(out)]);
    EXPECT_LT(bad, 0) << "output " << out << " differs at " << bad;
  }
}

class TileFaultTest : public ::testing::TestWithParam<EvalMode> {};

TEST_P(TileFaultTest, MidTileFaultSurfacesAsSingleCodedError) {
  const PipelineSpec spec = make_unsharp(64, 96);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);

  ExecOptions opts;
  opts.num_threads = 4;
  opts.mode = GetParam();
  Executor ex(pl, tiny_tile_grouping(pl), opts);
  Workspace ws;

  {
    // Fire mid-run: skip a few tile entries first.
    FaultGuard guard("executor.tile_eval", ErrorCode::kFaultInjected, 5);
    EXPECT_EQ(run_and_capture_code(ex, inputs, ws),
              ErrorCode::kFaultInjected);
  }

  // The workspace survived and is reusable: a clean re-run produces
  // bit-identical output.
  ex.run(inputs, ws);
  expect_matches_reference(pl, ws, ref);
}

INSTANTIATE_TEST_SUITE_P(BothEvalModes, TileFaultTest,
                         ::testing::Values(EvalMode::kRow, EvalMode::kScalar));

TEST(ExecutorFaultTest, ScratchAllocationFailureIsCoded) {
  const PipelineSpec spec = make_unsharp(64, 96);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();

  ExecOptions opts;
  opts.num_threads = 3;
  Executor ex(pl, tiny_tile_grouping(pl), opts);
  Workspace ws;

  FaultGuard guard("executor.scratch_alloc", ErrorCode::kAllocationFailed);
  EXPECT_EQ(run_and_capture_code(ex, inputs, ws),
            ErrorCode::kAllocationFailed);
}

TEST(ExecutorFaultTest, WorkspacePrepareFailureLeavesNoHalfInitializedViews) {
  const PipelineSpec spec = make_harris(64, 64);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  DpFusion dp(pl, model);
  const Grouping g = dp.run();
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);

  Executor ex(pl, g, {});
  Workspace ws;
  {
    // Fire on the SECOND allocation, so some buffers were already made.
    FaultGuard guard("workspace.prepare", ErrorCode::kAllocationFailed, 1);
    EXPECT_EQ(run_and_capture_code(ex, inputs, ws),
              ErrorCode::kAllocationFailed);
    // Strong guarantee: no view survived the failed prepare.
    for (int s = 0; s < pl.num_stages(); ++s) EXPECT_FALSE(ws.has(s));
  }
  // Reusable after the failure.
  ex.run(inputs, ws);
  expect_matches_reference(pl, ws, ref);
}

TEST(ExecutorFaultTest, PooledWorkspacePrepareFailureIsRecoverable) {
  const PipelineSpec spec = make_harris(64, 64);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  DpFusion dp(pl, model);
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);

  ExecOptions opts;
  opts.pooled_storage = true;
  opts.num_threads = 2;
  Executor ex(pl, dp.run(), opts);
  Workspace ws;
  {
    FaultGuard guard("workspace.prepare", ErrorCode::kAllocationFailed);
    EXPECT_EQ(run_and_capture_code(ex, inputs, ws),
              ErrorCode::kAllocationFailed);
  }
  ex.run(inputs, ws);
  expect_matches_reference(pl, ws, ref);
}

TEST(ExecutorFaultTest, DynamicScheduleCancelsAndMatchesStatic) {
  const PipelineSpec spec = make_unsharp(64, 96);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);

  // The cancellation latch must hold under dynamic worksharing too: with
  // schedule(dynamic) the tile->thread assignment is nondeterministic, but
  // a mid-run fault still surfaces as exactly one coded error.
  ExecOptions dyn;
  dyn.num_threads = 4;
  dyn.tile_schedule = TileSchedule::kDynamic;
  Executor ex_dyn(pl, tiny_tile_grouping(pl), dyn);
  Workspace ws_dyn;
  {
    FaultGuard guard("executor.tile_eval", ErrorCode::kFaultInjected, 7);
    EXPECT_EQ(run_and_capture_code(ex_dyn, inputs, ws_dyn),
              ErrorCode::kFaultInjected);
    EXPECT_FALSE(FaultInjector::armed());
  }

  // A clean re-run after the cancelled one is bit-correct...
  ex_dyn.run(inputs, ws_dyn);
  expect_matches_reference(pl, ws_dyn, ref);

  // ...and identical to a static-schedule run of the same plan: the
  // worksharing policy must never change the bits.
  ExecOptions sta = dyn;
  sta.tile_schedule = TileSchedule::kStatic;
  Executor ex_sta(pl, tiny_tile_grouping(pl), sta);
  Workspace ws_sta;
  ex_sta.run(inputs, ws_sta);
  for (int out : pl.outputs())
    EXPECT_TRUE(testing::buffers_equal(ws_dyn.stage_buffer(out),
                                       ws_sta.stage_buffer(out)));
}

TEST(ExecutorFaultTest, FaultFiresExactlyOnceAcrossThreads) {
  const PipelineSpec spec = make_unsharp(64, 96);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();

  ExecOptions opts;
  opts.num_threads = 4;
  Executor ex(pl, tiny_tile_grouping(pl), opts);
  Workspace ws;

  FaultGuard guard("executor.tile_eval", ErrorCode::kFaultInjected);
  EXPECT_EQ(run_and_capture_code(ex, inputs, ws), ErrorCode::kFaultInjected);
  // The injector latches after firing: the run ended because of exactly one
  // injected fault, and the point is now spent.
  EXPECT_FALSE(FaultInjector::armed());
}

}  // namespace
}  // namespace fusedp
