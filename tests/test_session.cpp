// Session facade tests: open/execute round-trips against the pre-facade
// run_pipeline path, consolidated Options validation (coded errors), and
// the bit-identity contract with and without an observer attached.
#include <gtest/gtest.h>

#include "api/session.hpp"
#include "fusion/incremental.hpp"
#include "pipelines/pipelines.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

using testing::buffers_equal;

// --- Options validation -----------------------------------------------------

TEST(OptionsValidationTest, DefaultsAreValid) {
  EXPECT_TRUE(validate_options(Options{}).ok());
}

TEST(OptionsValidationTest, RejectsNonPositiveThreads) {
  Options o;
  o.num_threads = 0;
  Result<bool> r = validate_options(o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kInvalidArgument);
  o.num_threads = -3;
  EXPECT_FALSE(validate_options(o).ok());
}

TEST(OptionsValidationTest, RejectsFmaWithoutVectorBackend) {
  Options o;
  o.allow_fma = true;
  o.vector_backend = false;
  Result<bool> r = validate_options(o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kInvalidArgument);
}

TEST(OptionsValidationTest, RejectsFmaWithScalarMode) {
  Options o;
  o.allow_fma = true;
  o.mode = EvalMode::kScalar;
  EXPECT_FALSE(validate_options(o).ok());
}

TEST(OptionsValidationTest, RejectsFastTranscendentalsWithoutVectorBackend) {
  Options o;
  o.fast_transcendentals = true;
  o.vector_backend = false;
  Result<bool> r = validate_options(o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kInvalidArgument);
}

TEST(OptionsValidationTest, RejectsFastTranscendentalsWithScalarMode) {
  Options o;
  o.fast_transcendentals = true;
  o.mode = EvalMode::kScalar;
  EXPECT_FALSE(validate_options(o).ok());
}

TEST(OptionsValidationTest, AcceptsFastTranscendentalsOnVectorBackend) {
  Options o;
  o.fast_transcendentals = true;
  EXPECT_TRUE(validate_options(o).ok());
}

TEST(OptionsValidationTest, RejectsNegativeDeadline) {
  Options o;
  o.deadline_seconds = -1.0;
  Result<bool> r = validate_options(o);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kInvalidArgument);
}

TEST(OptionsValidationTest, RejectsZeroStateBudgetForDpSchedulers) {
  Options o;
  o.max_states = 0;
  EXPECT_FALSE(validate_options(o).ok());  // kAuto uses DP tiers
  o.scheduler = Scheduler::kDp;
  EXPECT_FALSE(validate_options(o).ok());
  o.scheduler = Scheduler::kGreedy;  // no DP involved: budget irrelevant
  EXPECT_TRUE(validate_options(o).ok());
}

TEST(OptionsValidationTest, RejectsDeadlineOnNonAutoScheduler) {
  Options o;
  o.deadline_seconds = 0.5;
  o.scheduler = Scheduler::kDp;
  EXPECT_FALSE(validate_options(o).ok());
  o.scheduler = Scheduler::kAuto;
  EXPECT_TRUE(validate_options(o).ok());
}

TEST(OptionsValidationTest, RejectsDegenerateLadderAndGreedyConfig) {
  Options o;
  o.bounded_initial_limit = 1;
  EXPECT_FALSE(validate_options(o).ok());
  o = Options{};
  o.greedy_t1 = 0;
  EXPECT_FALSE(validate_options(o).ok());
  o = Options{};
  o.greedy_tolerance = -0.1;
  EXPECT_FALSE(validate_options(o).ok());
}

TEST(OptionsValidationTest, SessionOpenRejectsInvalidOptions) {
  const PipelineSpec spec = make_blur(64, 64);
  Options o;
  o.num_threads = 0;
  Result<Session> s = Session::open(*spec.pipeline, o);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kInvalidArgument);
}

// --- open() preconditions ---------------------------------------------------

TEST(SessionOpenTest, RejectsUnfinalizedPipeline) {
  Pipeline pl("unfinished");
  pl.add_input("in", {16, 16});
  Result<Session> s = Session::open(pl, Options{});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kInvalidPipeline);
}

TEST(SessionOpenTest, RejectsInvalidGrouping) {
  const PipelineSpec spec = make_harris(96, 128);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  Grouping g = singleton_grouping(pl, model);
  g.groups.pop_back();  // no longer covers all stages
  Result<Session> s = Session::open(pl, g, Options{});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kInvalidSchedule);
}

// --- execute() input validation ---------------------------------------------

TEST(SessionExecuteTest, RejectsWrongInputArity) {
  const PipelineSpec spec = make_blur(64, 64);
  Result<Session> opened = Session::open(*spec.pipeline, Options{});
  ASSERT_TRUE(opened.ok());
  Session s = std::move(opened).value();
  Result<double> r = s.execute({});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kInvalidArgument);
}

TEST(SessionExecuteTest, RejectsWrongInputExtents) {
  const PipelineSpec spec = make_blur(64, 64);
  Result<Session> opened = Session::open(*spec.pipeline, Options{});
  ASSERT_TRUE(opened.ok());
  Session s = std::move(opened).value();
  std::vector<Buffer> bad;
  bad.emplace_back(std::vector<std::int64_t>{3, 32, 64});
  Result<double> r = s.execute(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kInvalidArgument);
}

// --- facade round-trip vs the pre-facade path -------------------------------

TEST(SessionRoundTripTest, MatchesRunPipelineOnGivenGrouping) {
  const PipelineSpec spec = make_harris(96, 128);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  IncFusion inc(pl, model);
  const Grouping g = inc.run();
  const std::vector<Buffer> inputs = spec.make_inputs();

  ExecOptions eo;
  eo.num_threads = 2;
  const std::vector<Buffer> want = run_pipeline(pl, g, inputs, eo);

  Options so;
  so.num_threads = 2;
  Result<Session> opened = Session::open(pl, g, so);
  ASSERT_TRUE(opened.ok()) << opened.error().what();
  Session s = std::move(opened).value();
  Result<std::vector<Buffer>> got = s.run(inputs);
  ASSERT_TRUE(got.ok()) << got.error().what();

  ASSERT_EQ(got.value().size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i)
    EXPECT_TRUE(buffers_equal(got.value()[i], want[i])) << "output " << i;
}

TEST(SessionRoundTripTest, AutoScheduleMatchesReference) {
  for (const char* key : {"blur", "unsharp"}) {
    const PipelineSpec spec = make_benchmark(key, 16);
    const Pipeline& pl = *spec.pipeline;
    const std::vector<Buffer> inputs = spec.make_inputs();

    Options o;
    o.num_threads = 2;
    Result<Session> opened = Session::open(pl, o);
    ASSERT_TRUE(opened.ok()) << key << ": " << opened.error().what();
    Session s = std::move(opened).value();
    std::string why;
    EXPECT_TRUE(validate_grouping(pl, s.grouping(), &why)) << key << ": " << why;

    Result<double> seconds = s.execute(inputs);
    ASSERT_TRUE(seconds.ok()) << key;
    EXPECT_GT(seconds.value(), 0.0);

    const std::vector<Buffer> ref = run_reference(pl, inputs);
    ASSERT_EQ(s.num_outputs(), static_cast<int>(pl.outputs().size()));
    for (int i = 0; i < s.num_outputs(); ++i)
      EXPECT_TRUE(buffers_equal(
          s.output(i),
          ref[static_cast<std::size_t>(
              pl.outputs()[static_cast<std::size_t>(i)])]))
          << key;
  }
}

TEST(SessionRoundTripTest, EverySchedulerChoiceProducesValidSession) {
  const PipelineSpec spec = make_unsharp(96, 96);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  for (Scheduler which : {Scheduler::kAuto, Scheduler::kDp, Scheduler::kGreedy,
                          Scheduler::kHalideAuto, Scheduler::kUnfused}) {
    Options o;
    o.scheduler = which;
    Result<Session> opened = Session::open(pl, o);
    ASSERT_TRUE(opened.ok()) << scheduler_name(which);
    Session s = std::move(opened).value();
    Result<std::vector<Buffer>> got = s.run(inputs);
    ASSERT_TRUE(got.ok()) << scheduler_name(which);
    EXPECT_TRUE(buffers_equal(
        got.value()[0], ref[static_cast<std::size_t>(pl.outputs()[0])]))
        << scheduler_name(which);
  }
}

// --- observer-off bit-identity ----------------------------------------------

TEST(SessionObserverTest, TraceCollectionDoesNotChangeOutputs) {
  const PipelineSpec spec = make_harris(96, 128);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();

  Options plain;
  plain.num_threads = 2;
  Options traced = plain;
  traced.collect_trace = true;

  Result<Session> a = Session::open(pl, plain);
  Result<Session> b = Session::open(pl, traced);
  ASSERT_TRUE(a.ok() && b.ok());
  Session sa = std::move(a).value();
  Session sb = std::move(b).value();
  Result<std::vector<Buffer>> ra = sa.run(inputs);
  Result<std::vector<Buffer>> rb = sb.run(inputs);
  ASSERT_TRUE(ra.ok() && rb.ok());
  ASSERT_EQ(ra.value().size(), rb.value().size());
  for (std::size_t i = 0; i < ra.value().size(); ++i)
    EXPECT_TRUE(buffers_equal(ra.value()[i], rb.value()[i]));
  EXPECT_EQ(sa.trace(), nullptr);
  ASSERT_NE(sb.trace(), nullptr);
  EXPECT_TRUE(sb.trace()->complete);
}

// --- trace/report gating ----------------------------------------------------

TEST(SessionObserverTest, TraceApisRequireCollection) {
  const PipelineSpec spec = make_blur(64, 64);
  Result<Session> opened = Session::open(*spec.pipeline, Options{});
  ASSERT_TRUE(opened.ok());
  Session s = std::move(opened).value();
  Result<int> wrote = s.write_trace("/tmp/fusedp_should_not_exist.json");
  ASSERT_FALSE(wrote.ok());
  EXPECT_EQ(wrote.error().code(), ErrorCode::kInvalidArgument);
  EXPECT_FALSE(s.report().ok());
}

TEST(SessionObserverTest, RepeatedExecuteKeepsTracing) {
  const PipelineSpec spec = make_blur(96, 96);
  Options o;
  o.collect_trace = true;
  Result<Session> opened = Session::open(*spec.pipeline, o);
  ASSERT_TRUE(opened.ok());
  Session s = std::move(opened).value();
  const std::vector<Buffer> inputs = spec.make_inputs();
  ASSERT_TRUE(s.execute(inputs).ok());
  ASSERT_TRUE(s.execute(inputs).ok());
  ASSERT_NE(s.trace(), nullptr);
  EXPECT_TRUE(s.trace()->complete);
  EXPECT_GT(s.trace()->seconds, 0.0);
}

// --- back-compat shims ------------------------------------------------------

TEST(OptionsShimTest, ProjectsOntoLegacyStructs) {
  Options o;
  o.num_threads = 7;
  o.mode = EvalMode::kScalar;
  o.compiled = false;
  o.vector_backend = false;
  o.superop_fusion = false;
  o.tile_schedule = TileSchedule::kStatic;
  o.pooled_storage = true;
  o.guard_arena = true;
  const ExecOptions eo = o.exec();
  EXPECT_EQ(eo.num_threads, 7);
  EXPECT_EQ(eo.mode, EvalMode::kScalar);
  EXPECT_FALSE(eo.compiled);
  EXPECT_FALSE(eo.vector_backend);
  EXPECT_FALSE(eo.superop_fusion);
  EXPECT_EQ(eo.tile_schedule, TileSchedule::kStatic);
  EXPECT_TRUE(eo.pooled_storage);
  EXPECT_TRUE(eo.guard_arena);

  o.deadline_seconds = 1.5;
  o.max_states = 1234;
  o.bounded_initial_limit = 4;
  const AutoScheduleOptions ao = o.autoschedule();
  EXPECT_EQ(ao.deadline_seconds, 1.5);
  EXPECT_EQ(ao.max_states, 1234u);
  EXPECT_EQ(ao.bounded_initial_limit, 4);
}

}  // namespace
}  // namespace fusedp
