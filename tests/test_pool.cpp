// The persistent work-stealing pool: coverage (every tile exactly once,
// any lane count), the serial fast path, exception capture and pool
// survival, external-cancel and deadline semantics, interactive-before-bulk
// dispatch order, steal accounting, and the bit-equality sweep of the
// pool executor backend against the OpenMP region over adversarial tile
// sizes.  The pool is a process-wide singleton, so these tests share
// workers — each test must leave the pool quiesced and healthy.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fusion/incremental.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "runtime/pool.hpp"
#include "support/status.hpp"
#include "support/timing.hpp"
#include "test_util.hpp"
#include "verify/pipegen.hpp"

namespace fusedp {
namespace {

Grouping singletons_with_tiles(const Pipeline& pl,
                               std::vector<std::int64_t> tiles) {
  Grouping g;
  for (int s = 0; s < pl.num_stages(); ++s) {
    GroupSchedule gs;
    gs.stages = NodeSet::single(s);
    gs.tile_sizes = tiles;
    g.groups.push_back(gs);
  }
  return g;
}

TEST(WorkPool, CoversEveryTileExactlyOnce) {
  WorkPool& pool = WorkPool::instance();
  for (const int lanes : {1, 2, 3, 4}) {
    for (const std::int64_t total : {std::int64_t{0}, std::int64_t{1},
                                     std::int64_t{5}, std::int64_t{64},
                                     std::int64_t{1000}}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(total));
      for (auto& h : hits) h.store(0);
      ParallelForOptions opts;
      opts.lanes = lanes;
      pool.parallel_for(total, opts, [&](LaneContext& lc) {
        for (std::int64_t t = lc.claim(); t >= 0; t = lc.claim()) {
          ASSERT_GE(t, 0);
          ASSERT_LT(t, total);
          hits[static_cast<std::size_t>(t)].fetch_add(1);
        }
      });
      for (std::int64_t t = 0; t < total; ++t)
        EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1)
            << "lanes=" << lanes << " total=" << total << " tile=" << t;
    }
  }
}

TEST(WorkPool, SerialFastPathRunsInline) {
  WorkPool& pool = WorkPool::instance();
  const std::thread::id caller = std::this_thread::get_id();
  std::int64_t tiles = 0;
  ParallelForOptions opts;
  opts.lanes = 1;
  pool.parallel_for(16, opts, [&](LaneContext& lc) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(lc.lane(), 0);
    EXPECT_EQ(lc.worker(), -1);
    EXPECT_EQ(lc.queue_wait_seconds(), 0.0);
    for (std::int64_t t = lc.claim(); t >= 0; t = lc.claim()) ++tiles;
    EXPECT_EQ(lc.steals(), 0);
  });
  EXPECT_EQ(tiles, 16);
}

TEST(WorkPool, ExceptionIsCapturedOnceAndPoolSurvives) {
  WorkPool& pool = WorkPool::instance();
  ParallelForOptions opts;
  opts.lanes = 3;
  std::atomic<std::int64_t> executed{0};
  try {
    pool.parallel_for(200, opts, [&](LaneContext& lc) {
      for (std::int64_t t = lc.claim(); t >= 0; t = lc.claim()) {
        if (t == 42) throw Error("planted tile fault", ErrorCode::kFaultInjected);
        executed.fetch_add(1);
      }
    });
    FAIL() << "exception was swallowed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
    EXPECT_NE(std::string(e.what()).find("planted tile fault"),
              std::string::npos);
  }
  // The throw cancels outstanding claims: the job ends early.
  EXPECT_LT(executed.load(), 200);

  // The pool must be fully usable afterwards (no stuck workers, no latched
  // error state).
  std::atomic<std::int64_t> clean{0};
  pool.parallel_for(100, opts, [&](LaneContext& lc) {
    for (std::int64_t t = lc.claim(); t >= 0; t = lc.claim())
      clean.fetch_add(1);
  });
  EXPECT_EQ(clean.load(), 100);
}

TEST(WorkPool, ExternalCancelSuppressesClaimsWithoutThrowing) {
  WorkPool& pool = WorkPool::instance();
  const std::atomic<bool> cancelled{true};
  for (const int lanes : {1, 3}) {
    ParallelForOptions opts;
    opts.lanes = lanes;
    opts.cancel = &cancelled;
    std::atomic<std::int64_t> executed{0};
    // External cancel is the owner's error to report: parallel_for itself
    // must return normally with every claim suppressed.
    pool.parallel_for(50, opts, [&](LaneContext& lc) {
      for (std::int64_t t = lc.claim(); t >= 0; t = lc.claim())
        executed.fetch_add(1);
    });
    EXPECT_EQ(executed.load(), 0) << "lanes=" << lanes;
  }
}

TEST(WorkPool, DeadlineCancelsMidJobAcrossLanes) {
  WorkPool& pool = WorkPool::instance();
  for (const int lanes : {1, 3}) {
    const Deadline dl = Deadline::after(2e-3);
    ParallelForOptions opts;
    opts.lanes = lanes;
    opts.deadline = &dl;
    std::atomic<std::int64_t> executed{0};
    try {
      pool.parallel_for(10000, opts, [&](LaneContext& lc) {
        for (std::int64_t t = lc.claim(); t >= 0; t = lc.claim()) {
          executed.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      });
      FAIL() << "deadline did not fire (lanes=" << lanes << ")";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
    }
    EXPECT_GT(executed.load(), 0) << "lanes=" << lanes;
    EXPECT_LT(executed.load(), 10000) << "lanes=" << lanes;
  }
}

TEST(WorkPool, InteractiveDispatchedBeforeBulk) {
  WorkPool& pool = WorkPool::instance();
  pool.ensure_workers(1);
  const int workers = pool.workers();
  ASSERT_GE(workers, 1);

  // Park every worker: W-1 on the hold gate, the last one on its own gate.
  // Once all are parked both queues are empty, so the bulk and interactive
  // probes below are queued in a controlled state; releasing only the last
  // worker forces one worker to drain both probes serially — and it must
  // take the interactive one first even though bulk was submitted first.
  std::mutex mu;
  std::condition_variable cv;
  bool hold = true;
  bool hold_last = true;
  std::atomic<int> parked{0};
  for (int i = 0; i < workers - 1; ++i) {
    pool.submit(TaskPriority::kInteractive, [&] {
      parked.fetch_add(1);
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return !hold; });
    });
  }
  pool.submit(TaskPriority::kInteractive, [&] {
    parked.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return !hold_last; });
  });
  while (parked.load() < workers)
    std::this_thread::sleep_for(std::chrono::microseconds(50));

  std::vector<std::string> order;
  std::mutex order_mu;
  pool.submit(TaskPriority::kBulk, [&] {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back("bulk");
  });
  pool.submit(TaskPriority::kInteractive, [&] {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back("interactive");
  });

  {
    std::lock_guard<std::mutex> lock(mu);
    hold_last = false;
  }
  cv.notify_all();
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(order_mu);
      if (order.size() == 2) break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    hold = false;
  }
  cv.notify_all();
  pool.quiesce();

  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "interactive");
  EXPECT_EQ(order[1], "bulk");
}

TEST(WorkPool, StealingMovesWorkFromASlowLane) {
  WorkPool& pool = WorkPool::instance();
  ParallelForOptions opts;
  opts.lanes = 2;
  std::atomic<std::int64_t> steals{0};
  std::atomic<std::int64_t> executed{0};
  // Lane 0 owns the first half of the range and dawdles on every tile it
  // runs; lane 1 drains its own half quickly and must steal from lane 0's
  // remainder to keep the job work-conserving.
  pool.parallel_for(64, opts, [&](LaneContext& lc) {
    for (std::int64_t t = lc.claim(); t >= 0; t = lc.claim()) {
      executed.fetch_add(1);
      if (lc.lane() == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    steals.fetch_add(lc.steals());
  });
  EXPECT_EQ(executed.load(), 64);
  EXPECT_GT(steals.load(), 0);
}

TEST(WorkPool, StatsAdvance) {
  WorkPool& pool = WorkPool::instance();
  const PoolStats before = pool.stats();
  ParallelForOptions opts;
  opts.lanes = 2;
  pool.parallel_for(32, opts, [&](LaneContext& lc) {
    for (std::int64_t t = lc.claim(); t >= 0; t = lc.claim()) {
    }
  });
  const PoolStats after = pool.stats();
  EXPECT_GT(after.jobs, before.jobs);
  EXPECT_GE(after.tasks_executed, before.tasks_executed);
  EXPECT_GE(after.workers, 1);
}

// The acceptance sweep: the pool executor backend must be bit-identical to
// the OpenMP region over tile shapes chosen to stress the claim/steal
// partition — per-pixel tiles (maximal tile count, heavy stealing),
// single-row strips, non-dividing odd shapes, and one tile covering the
// whole domain (no parallelism to find).
TEST(PoolExecutor, BitIdenticalToOpenMPOverAdversarialTileSizes) {
  const std::vector<std::vector<std::int64_t>> tile_shapes = {
      {1, 1}, {1, 64}, {3, 7}, {1024, 1024}};
  for (const std::uint64_t seed : {1ull, 4ull, 11ull}) {
    const auto pl = verify::generate_pipeline(seed);
    const auto inputs = verify::generate_inputs(*pl, seed);
    for (const auto& tiles : tile_shapes) {
      const Grouping g = singletons_with_tiles(*pl, tiles);
      ExecOptions openmp;
      openmp.num_threads = 3;
      ExecOptions pooled = openmp;
      pooled.pool_backend = true;
      const auto want = run_pipeline(*pl, g, inputs, openmp);
      const auto got = run_pipeline(*pl, g, inputs, pooled);
      ASSERT_EQ(want.size(), got.size());
      for (std::size_t o = 0; o < want.size(); ++o)
        EXPECT_TRUE(testing::buffers_equal(want[o], got[o]))
            << "seed " << seed << " tiles {" << tiles[0] << "," << tiles[1]
            << "} output " << o;
    }
  }
}

// Same sweep on a real paper pipeline under its chosen schedule, across
// lane widths (including width 1: the serial fast path must also be
// bit-identical, not just fast).
TEST(PoolExecutor, BitIdenticalOnPaperPipelineAcrossLaneWidths) {
  const PipelineSpec spec = make_benchmark("unsharp", 16);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::host());
  IncFusion inc(pl, model);
  const Grouping g = inc.run();
  const std::vector<Buffer> inputs = spec.make_inputs();
  ExecOptions openmp;
  openmp.num_threads = 2;
  const auto want = run_pipeline(pl, g, inputs, openmp);
  for (const int lanes : {1, 2, 4}) {
    ExecOptions pooled = openmp;
    pooled.pool_backend = true;
    pooled.num_threads = lanes;
    const auto got = run_pipeline(pl, g, inputs, pooled);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t o = 0; o < want.size(); ++o)
      EXPECT_TRUE(testing::buffers_equal(want[o], got[o]))
          << "lanes " << lanes << " output " << o;
  }
}

// PR 6 semantics through the pool backend: the executor's own per-tile
// deadline probe still produces its exact error contract, and the workspace
// remains reusable afterwards (re-run without the deadline is clean).
TEST(PoolExecutor, ExecutorDeadlineContractCarriesOver) {
  const PipelineSpec spec = make_benchmark("harris", 8);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::host());
  IncFusion inc(pl, model);
  const Grouping g = inc.run();
  const std::vector<Buffer> inputs = spec.make_inputs();
  ExecOptions opts;
  opts.num_threads = 2;
  opts.pool_backend = true;
  const Executor ex(pl, g, opts);
  Workspace ws;
  const Deadline dl = Deadline::after(-1.0);  // already expired
  try {
    ex.run(inputs, ws, nullptr, &dl);
    FAIL() << "expired deadline did not fire through the pool backend";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
    EXPECT_NE(std::string(e.what()).find("run deadline exceeded"),
              std::string::npos)
        << e.what();
  }
  // The workspace survives the cancelled run.
  ex.run(inputs, ws);
  const auto want = run_pipeline(pl, g, inputs, ExecOptions{});
  for (std::size_t o = 0; o < want.size(); ++o)
    EXPECT_TRUE(testing::buffers_equal(
        ws.stage_buffer(pl.outputs()[static_cast<int>(o)]), want[o]));
}

}  // namespace
}  // namespace fusedp
