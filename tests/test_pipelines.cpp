// Benchmark-pipeline structure tests: stage counts must match the paper's
// Table 2, DAGs must be well-formed, and the semantics of a few stages are
// spot-checked against hand computations.
#include <gtest/gtest.h>

#include <cmath>

#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"

namespace fusedp {
namespace {

TEST(PipelinesTest, StageCountsMatchPaperTable2) {
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, 16);
    EXPECT_EQ(spec.pipeline->num_stages(), info.paper_stages) << info.key;
  }
}

TEST(PipelinesTest, BenchmarkListOrderAndAbbrevs) {
  const auto& list = benchmark_list();
  ASSERT_EQ(list.size(), 6u);
  EXPECT_EQ(list[0].abbrev, "UM");
  EXPECT_EQ(list[5].abbrev, "PB");
  EXPECT_EQ(list[3].paper_stages, 49);
}

TEST(PipelinesTest, InputsMatchDeclaredDomains) {
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, 16);
    const std::vector<Buffer> inputs = spec.make_inputs();
    ASSERT_EQ(static_cast<int>(inputs.size()), spec.pipeline->num_inputs())
        << info.key;
    for (int i = 0; i < spec.pipeline->num_inputs(); ++i)
      EXPECT_EQ(inputs[static_cast<std::size_t>(i)].volume(),
                spec.pipeline->input(i).domain.volume())
          << info.key;
  }
}

TEST(PipelinesTest, SingleOutputEach) {
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, 16);
    EXPECT_EQ(spec.pipeline->outputs().size(), 1u) << info.key;
  }
}

TEST(PipelinesTest, BilateralHasExactlyOneReduction) {
  const PipelineSpec spec = make_bilateral(64, 64);
  int reductions = 0;
  for (const Stage& s : spec.pipeline->stages())
    if (s.kind == StageKind::kReduction) ++reductions;
  EXPECT_EQ(reductions, 1);
  EXPECT_EQ(spec.pipeline->stage(0).kind, StageKind::kReduction);
}

TEST(PipelinesTest, CampipeHasDynamicLutAccess) {
  const PipelineSpec spec = make_campipe(64, 64);
  bool found = false;
  for (const Stage& s : spec.pipeline->stages())
    for (const Access& a : s.loads)
      for (const AxisMap& m : a.axes)
        if (m.kind == AxisMap::Kind::kDynamic) found = true;
  EXPECT_TRUE(found) << "campipe's tone curve must be a dynamic gather";
}

TEST(PipelinesTest, InterpolateUsesBothScalingDirections) {
  const PipelineSpec spec = make_interpolate(64, 64);
  bool down = false, up = false;
  for (const Stage& s : spec.pipeline->stages())
    for (const Access& a : s.loads)
      for (const AxisMap& m : a.axes) {
        if (m.kind != AxisMap::Kind::kAffine) continue;
        if (m.num == 2) down = true;
        if (m.den == 2) up = true;
      }
  EXPECT_TRUE(down);
  EXPECT_TRUE(up);
}

TEST(PipelinesTest, BlurSemantics) {
  // blury of blur == hand-computed separable 3x3 box blur with clamping.
  const PipelineSpec spec = make_blur(8, 8);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  const Buffer& in = inputs[0];
  const Buffer& out = ref[1];
  auto at = [&](std::int64_t c, std::int64_t x, std::int64_t y) {
    x = std::clamp<std::int64_t>(x, 0, 7);
    y = std::clamp<std::int64_t>(y, 0, 7);
    return in.at({c, x, y});
  };
  for (std::int64_t x = 0; x < 8; ++x) {
    for (std::int64_t y = 0; y < 8; ++y) {
      float bx[3];
      for (int dy = -1; dy <= 1; ++dy)
        bx[dy + 1] =
            (at(0, x - 1, y + dy) + at(0, x, y + dy) + at(0, x + 1, y + dy)) /
            3.0f;
      const float expect = (bx[0] + bx[1] + bx[2]) / 3.0f;
      EXPECT_NEAR(out.at({0, x, y}), expect, 1e-5f) << x << "," << y;
    }
  }
}

TEST(PipelinesTest, HarrisFindsCornerOnSyntheticSquare) {
  // A bright axis-aligned square on a dark background: the response at its
  // corner must exceed the response on its edge and in flat regions.
  Pipeline* harris_pl;
  PipelineSpec spec = make_harris(64, 64);
  harris_pl = spec.pipeline.get();
  Buffer img({3, 64, 64});
  for (std::int64_t c = 0; c < 3; ++c)
    for (std::int64_t x = 20; x < 44; ++x)
      for (std::int64_t y = 20; y < 44; ++y) img.at({c, x, y}) = 1.0f;
  std::vector<Buffer> inputs;
  inputs.push_back(std::move(img));
  const std::vector<Buffer> ref = run_reference(*harris_pl, inputs);
  const Buffer& resp = ref[static_cast<std::size_t>(harris_pl->outputs()[0])];
  const float corner = std::fabs(resp.at({20, 20}));
  const float edge = std::fabs(resp.at({20, 32}));
  const float flat = std::fabs(resp.at({5, 5}));
  EXPECT_GT(corner, edge);
  EXPECT_GT(corner, 100.0f * (flat + 1e-12f));
}

TEST(PipelinesTest, BilateralPreservesConstantImage) {
  // Bilateral filtering of a constant image must return (approximately)
  // the same constant.
  const PipelineSpec spec = make_bilateral(64, 64);
  const Pipeline& pl = *spec.pipeline;
  Buffer img({64, 64});
  for (std::int64_t i = 0; i < img.volume(); ++i) img.data()[i] = 0.42f;
  std::vector<Buffer> inputs;
  inputs.push_back(std::move(img));
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  const Buffer& out = ref[static_cast<std::size_t>(pl.outputs()[0])];
  for (std::int64_t i = 0; i < out.volume(); ++i)
    ASSERT_NEAR(out.data()[i], 0.42f, 1e-3f) << i;
}

TEST(PipelinesTest, PyramidBlendInterpolatesBetweenInputs) {
  // With mask ~1 the output must match blending toward image A on the left
  // side, and toward B on the right.
  const PipelineSpec spec = make_pyramid_blend(64, 64);
  const Pipeline& pl = *spec.pipeline;
  Buffer a({3, 64, 64}), b({3, 64, 64});
  for (std::int64_t i = 0; i < a.volume(); ++i) {
    a.data()[i] = 0.9f;
    b.data()[i] = 0.1f;
  }
  std::vector<Buffer> inputs;
  inputs.push_back(std::move(a));
  inputs.push_back(std::move(b));
  inputs.push_back(make_blend_mask(64, 64));
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  const Buffer& out = ref[static_cast<std::size_t>(pl.outputs()[0])];
  EXPECT_NEAR(out.at({0, 32, 2}), 0.9f, 0.05f);   // left: image A
  EXPECT_NEAR(out.at({0, 32, 61}), 0.1f, 0.05f);  // right: image B
}

TEST(PipelinesTest, CampipeOutputInRange) {
  const PipelineSpec spec = make_campipe(64, 64);
  const Pipeline& pl = *spec.pipeline;
  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::vector<Buffer> ref = run_reference(pl, inputs);
  const Buffer& out = ref[static_cast<std::size_t>(pl.outputs()[0])];
  for (std::int64_t i = 0; i < out.volume(); ++i) {
    ASSERT_GE(out.data()[i], 0.0f);
    ASSERT_LE(out.data()[i], 1.0f);
  }
}

TEST(PipelinesTest, ScaleParameterShrinksExtents) {
  const PipelineSpec full = make_benchmark("unsharp", 4);
  const PipelineSpec half = make_benchmark("unsharp", 8);
  EXPECT_GT(full.pipeline->stage(0).domain.volume(),
            half.pipeline->stage(0).domain.volume());
  EXPECT_THROW(make_benchmark("unknown", 1), Error);
  EXPECT_THROW(make_benchmark("unsharp", 0), Error);
}

TEST(PipelinesTest, MaxSuccIsSmall) {
  // Paper Table 2 reports small max|succ| values; sanity-check ours stay
  // below the partition-width danger zone for the stage graphs themselves.
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, 16);
    const Pipeline& pl = *spec.pipeline;
    int max_succ = 0;
    for (int s = 0; s < pl.num_stages(); ++s)
      max_succ = std::max(max_succ, pl.graph().successors(s).size());
    EXPECT_LE(max_succ, 8) << info.key;
  }
}

}  // namespace
}  // namespace fusedp
