// Unit tests for the support library: buffers, stats, RNG, CLI, image I/O.
#include <gtest/gtest.h>

#include <cstdio>

#include "support/buffer.hpp"
#include "support/cli.hpp"
#include "support/fault.hpp"
#include "support/image_io.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/status.hpp"

namespace fusedp {
namespace {

TEST(Status, CheckThrowsWithContext) {
  try {
    FUSEDP_CHECK(false, "boom");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
    EXPECT_EQ(e.code(), ErrorCode::kInternal);  // default code
  }
}

TEST(Status, CheckCodeCarriesCode) {
  try {
    FUSEDP_CHECK_CODE(false, ErrorCode::kDeadlineExceeded, "too slow");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
    EXPECT_NE(std::string(e.what()).find("too slow"), std::string::npos);
  }
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kFaultInjected); ++c)
    EXPECT_STRNE(error_code_name(static_cast<ErrorCode>(c)), "unknown");
}

TEST(Status, ResultHoldsValueOrError) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(-1), 42);

  Result<int> bad =
      Result<int>::failure(ErrorCode::kAllocationFailed, "no memory");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), ErrorCode::kAllocationFailed);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW(bad.value(), Error);   // wrong-side access is itself an error
  EXPECT_THROW(ok.error(), Error);
}

TEST(Fault, ArmedPointFiresOnceWithCodeAndSkip) {
  FaultInjector::arm("test.point", ErrorCode::kAllocationFailed, /*skip=*/2);
  auto hit = [] { FUSEDP_FAULT_POINT("test.point"); };
  hit();  // skipped
  hit();  // skipped
  try {
    hit();
    FAIL() << "third hit should fire";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAllocationFailed);
  }
  EXPECT_FALSE(FaultInjector::armed());  // latched after firing
  hit();                                 // spent: no rethrow
  FaultInjector::disarm();
}

TEST(Fault, OtherPointsAreUntouched) {
  FaultInjector::arm("test.armed", ErrorCode::kFaultInjected);
  FUSEDP_FAULT_POINT("test.other");  // must not fire
  EXPECT_TRUE(FaultInjector::armed());
  EXPECT_EQ(FaultInjector::hits(), 0u);
  FaultInjector::disarm();
  FUSEDP_FAULT_POINT("test.armed");  // disarmed: no fire
}

TEST(Buffer, StridesAreRowMajor) {
  Buffer b({2, 3, 4});
  EXPECT_EQ(b.volume(), 24);
  EXPECT_EQ(b.stride(2), 1);
  EXPECT_EQ(b.stride(1), 4);
  EXPECT_EQ(b.stride(0), 12);
  b.at({1, 2, 3}) = 7.0f;
  EXPECT_EQ(b.data()[23], 7.0f);
}

TEST(Buffer, ZeroInitialized) {
  Buffer b({5, 5});
  for (std::int64_t i = 0; i < b.volume(); ++i) EXPECT_EQ(b.data()[i], 0.0f);
}

TEST(Buffer, ViewOriginOffsets) {
  Buffer b({4, 8});
  b.at({2, 5}) = 3.0f;
  BufferView v = b.view();
  v.origin[0] = 1;
  v.origin[1] = 2;
  const std::int64_t c[2] = {3, 7};  // global (3,7) -> local (2,5)
  EXPECT_EQ(v.at(c), 3.0f);
}

TEST(Buffer, RejectsBadExtents) {
  EXPECT_THROW(Buffer({0, 4}), Error);
  EXPECT_THROW(Buffer({1, 2, 3, 4, 5}), Error);
}

TEST(Stats, MinOfAveragesProtocol) {
  int calls = 0;
  const RunStats st = measure_min_of_averages([&] { ++calls; }, 3, 5);
  EXPECT_EQ(calls, 15);
  EXPECT_EQ(st.sample_avgs_ms.size(), 3u);
  EXPECT_GE(st.min_avg_ms, 0.0);
  EXPECT_LE(st.best_ms, st.worst_ms);
  for (double avg : st.sample_avgs_ms) EXPECT_GE(avg, st.min_avg_ms);
}

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(stddev({2.0, 4.0, 6.0}), 2.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(Rng, DeterministicAndBounded) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(10), 10u);
    const float f = r.next_float();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Cli, FlagsParse) {
  const char* argv[] = {"prog", "--alpha=3", "--name=xyz", "--flag"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get("name", ""), "xyz");
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 1.5), 1.5);
}

TEST(Cli, EnvFallback) {
  setenv("FUSEDP_TESTKNOB", "17", 1);
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int_env("testknob", 0), 17);
  unsetenv("FUSEDP_TESTKNOB");
  EXPECT_EQ(cli.get_int_env("testknob", 5), 5);
}

TEST(ImageIo, SyntheticImageInRange) {
  const Buffer img = make_synthetic_image({3, 64, 48}, 5);
  EXPECT_EQ(img.rank(), 3);
  float lo = 1e9f, hi = -1e9f;
  for (std::int64_t i = 0; i < img.volume(); ++i) {
    lo = std::min(lo, img.data()[i]);
    hi = std::max(hi, img.data()[i]);
  }
  EXPECT_GE(lo, 0.0f);
  EXPECT_LE(hi, 1.0f);
  EXPECT_GT(hi - lo, 0.1f) << "synthetic image should have contrast";
}

TEST(ImageIo, SyntheticDeterministic) {
  const Buffer a = make_synthetic_image({32, 32}, 9);
  const Buffer b = make_synthetic_image({32, 32}, 9);
  for (std::int64_t i = 0; i < a.volume(); ++i)
    EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(ImageIo, PpmRoundTrip) {
  const Buffer img = make_synthetic_image({3, 20, 30}, 3);
  const std::string path = ::testing::TempDir() + "/fusedp_roundtrip.ppm";
  write_ppm(path, img);
  const Buffer back = read_ppm(path);
  ASSERT_EQ(back.rank(), 3);
  EXPECT_EQ(back.extent(1), 20);
  EXPECT_EQ(back.extent(2), 30);
  // 8-bit quantization: everything within 1/255 of the original.
  for (std::int64_t i = 0; i < img.volume(); ++i)
    EXPECT_NEAR(back.data()[i], img.data()[i], 1.0f / 255.0f + 1e-4f);
  std::remove(path.c_str());
}

TEST(ImageIo, BlendMaskIsSoftSplit) {
  const Buffer m = make_blend_mask(64, 128);
  EXPECT_GT(m.at({32, 4}), 0.95f);   // far left: ~1
  EXPECT_LT(m.at({32, 124}), 0.05f); // far right: ~0
}

}  // namespace
}  // namespace fusedp
