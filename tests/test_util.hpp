// Shared test helpers: random stencil-DAG pipeline generation, brute-force
// grouping enumeration, and buffer comparison.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fusion/grouping.hpp"
#include "ir/builder.hpp"
#include "support/buffer.hpp"
#include "support/rng.hpp"

namespace fusedp::testing {

// Builds a random pipeline of `n` stages over a `h x w` image: stage i reads
// 1..2 random earlier producers (or the input) through small random stencils,
// occasionally through 2x down/upsampling accesses when `allow_scaling`.
// Deterministic in `seed`.
std::unique_ptr<Pipeline> random_pipeline(int n, std::int64_t h,
                                          std::int64_t w, std::uint64_t seed,
                                          bool allow_scaling = false);

// Enumerates every valid grouping of `pl` (disjoint connected groups
// covering all stages, acyclic quotient, no fused reductions, constant
// dependences) and calls `fn` for each.  Exponential — test-size DAGs only.
void for_each_valid_grouping(const Pipeline& pl,
                             const std::function<void(const Grouping&)>& fn);

// True if the two buffers are bit-identical.
bool buffers_equal(const Buffer& a, const Buffer& b);

// Index of the first mismatching element, or -1.
std::int64_t first_mismatch(const Buffer& a, const Buffer& b);

}  // namespace fusedp::testing
