// Tests for liveness-based storage pooling.
#include <gtest/gtest.h>

#include "fusion/dp.hpp"
#include "pipelines/pipelines.hpp"
#include "runtime/executor.hpp"
#include "storage/liveness.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

// Linear chain of n singleton groups: intermediates have short, disjoint
// lifetimes and should collapse into very few slots.
TEST(StorageTest, LinearChainCollapsesToTwoSlots) {
  Pipeline pl("chain");
  const int img = pl.add_input("img", {32, 32});
  const Stage* prev = nullptr;
  for (int i = 0; i < 6; ++i) {
    StageBuilder b(pl, pl.add_stage("s" + std::to_string(i), {32, 32}));
    b.define(prev == nullptr ? b.in(img, {0, 0}) * 2.0f
                             : b.at(*prev, {0, 1}) + 1.0f);
    prev = &b.stage();
  }
  pl.finalize();
  const CostModel model(pl, MachineModel::xeon_haswell());
  const ExecutablePlan plan = lower(pl, singleton_grouping(pl, model));
  const StorageAssignment asg = assign_storage(plan);
  // Stage i is dead once stage i+1 has run: 2 slots suffice (producer +
  // consumer alternating); the output stage is unpooled.
  EXPECT_EQ(asg.num_slots, 2);
  EXPECT_EQ(asg.unpooled_floats, 5 * 32 * 32);
  EXPECT_EQ(asg.pooled_floats, 2 * 32 * 32);
  EXPECT_GT(asg.reuse_factor(), 2.0);
  EXPECT_EQ(asg.slot[5], -1) << "pipeline output must not be pooled";
}

TEST(StorageTest, IntervalsNeverOverlapWithinSlot) {
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, 16);
    const Pipeline& pl = *spec.pipeline;
    const CostModel model(pl, MachineModel::xeon_haswell());
    DpOptions dopts;
    const ExecutablePlan plan = lower(pl, singleton_grouping(pl, model));
    const StorageAssignment asg = assign_storage(plan);
    const std::vector<LiveInterval> intervals = compute_live_intervals(plan);
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      for (std::size_t j = i + 1; j < intervals.size(); ++j) {
        const int si = asg.slot[static_cast<std::size_t>(intervals[i].stage)];
        const int sj = asg.slot[static_cast<std::size_t>(intervals[j].stage)];
        if (si != sj || si < 0) continue;
        const bool disjoint = intervals[i].last_use < intervals[j].def_group ||
                              intervals[j].last_use < intervals[i].def_group;
        EXPECT_TRUE(disjoint)
            << info.key << ": stages " << intervals[i].stage << " and "
            << intervals[j].stage << " share slot " << si;
      }
    }
    // Slots must be large enough for every tenant.
    for (const LiveInterval& li : intervals) {
      const int s = asg.slot[static_cast<std::size_t>(li.stage)];
      if (s < 0) continue;
      EXPECT_GE(asg.slot_floats[static_cast<std::size_t>(s)],
                pl.stage(li.stage).volume());
    }
  }
}

TEST(StorageTest, PooledExecutionBitIdentical) {
  for (const char* key : {"unsharp", "harris", "campipe", "bilateral"}) {
    const PipelineSpec spec = make_benchmark(key, 24);
    const Pipeline& pl = *spec.pipeline;
    const CostModel model(pl, MachineModel::xeon_haswell());
    DpFusion dp(pl, model);
    const Grouping g = dp.run();
    const std::vector<Buffer> inputs = spec.make_inputs();
    ExecOptions plain, pooled;
    pooled.pooled_storage = true;
    plain.num_threads = pooled.num_threads = 2;
    const std::vector<Buffer> a = run_pipeline(pl, g, inputs, plain);
    const std::vector<Buffer> b = run_pipeline(pl, g, inputs, pooled);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t o = 0; o < a.size(); ++o)
      EXPECT_TRUE(testing::buffers_equal(a[o], b[o])) << key;
  }
}

TEST(StorageTest, PoolingReducesFootprint) {
  const PipelineSpec spec = make_benchmark("interpolate", 16);
  const Pipeline& pl = *spec.pipeline;
  const CostModel model(pl, MachineModel::xeon_haswell());
  const Grouping g = singleton_grouping(pl, model);
  const std::vector<Buffer> inputs = spec.make_inputs();

  ExecOptions plain, pooled;
  pooled.pooled_storage = true;
  Executor ep(pl, g, plain), eq(pl, g, pooled);
  Workspace wp, wq;
  ep.run(inputs, wp);
  eq.run(inputs, wq);
  EXPECT_LT(wq.allocated_floats(), wp.allocated_floats());
  EXPECT_GT(eq.storage().reuse_factor(), 1.2);
}

TEST(StorageTest, FullyFusedGroupNeedsNoSlots) {
  const PipelineSpec spec = make_unsharp(64, 64);
  const Pipeline& pl = *spec.pipeline;
  Grouping g;
  GroupSchedule gs;
  for (int i = 0; i < 4; ++i) gs.stages = gs.stages.with(i);
  g.groups = {gs};
  const StorageAssignment asg = assign_storage(lower(pl, g));
  EXPECT_EQ(asg.num_slots, 0);  // everything lives in per-tile scratch
  EXPECT_EQ(asg.pooled_floats, 0);
}

}  // namespace
}  // namespace fusedp
