// Tests for the baseline schedulers: PolyMage-A (greedy + auto-tuning),
// H-auto (Halide auto-scheduler model), and H-manual (expert schedules).
#include <gtest/gtest.h>

#include "fusion/halide_auto.hpp"
#include "fusion/manual.hpp"
#include "fusion/polymage_greedy.hpp"
#include "pipelines/pipelines.hpp"
#include "test_util.hpp"

namespace fusedp {
namespace {

TEST(PolyMageGreedyTest, ValidOnAllBenchmarksAcrossConfigs) {
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, 16);
    const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
    const PolyMageGreedy greedy(*spec.pipeline, model);
    for (std::int64_t t : {8ll, 64ll, 256ll}) {
      for (double tol : {0.2, 0.5}) {
        const Grouping g = greedy.run(t, t, tol);
        std::string why;
        EXPECT_TRUE(validate_grouping(*spec.pipeline, g, &why))
            << info.key << " t=" << t << " tol=" << tol << ": " << why;
      }
    }
  }
}

TEST(PolyMageGreedyTest, HigherToleranceFusesAtLeastAsMuch) {
  const PipelineSpec spec = make_harris(512, 512);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  const PolyMageGreedy greedy(*spec.pipeline, model);
  const Grouping strict = greedy.run(64, 64, 0.05);
  const Grouping loose = greedy.run(64, 64, 0.9);
  EXPECT_GE(strict.groups.size(), loose.groups.size());
}

TEST(PolyMageGreedyTest, ZeroToleranceMeansNoOverlappedFusion) {
  const PipelineSpec spec = make_blur(256, 256);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  const PolyMageGreedy greedy(*spec.pipeline, model);
  // blur's fusion requires recomputation, so a ~zero tolerance forbids it.
  const Grouping g = greedy.run(64, 64, 1e-9);
  EXPECT_EQ(g.groups.size(), 2u);
}

TEST(PolyMageGreedyTest, TunePicksFastestConfig) {
  const PipelineSpec spec = make_blur(256, 256);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  PolyMageOptions opts;
  opts.tile_candidates = {32, 64};
  opts.tolerances = {0.2, 0.5};
  const PolyMageGreedy greedy(*spec.pipeline, model, opts);
  // Synthetic timing callback: prefer fewer groups, then larger tiles.
  PolyMageTuneResult res;
  const Grouping best = greedy.tune(
      [](const Grouping& g) {
        double ms = static_cast<double>(g.groups.size()) * 100.0;
        for (const GroupSchedule& gs : g.groups)
          for (std::int64_t t : gs.tile_sizes) ms -= static_cast<double>(t) * 1e-3;
        return ms;
      },
      &res);
  EXPECT_EQ(res.configs_tried, 2 * 2 * 2);
  EXPECT_EQ(best.groups.size(), 1u);
  EXPECT_EQ(res.best_t1, 64);
}

TEST(HalideAutoTest, ValidOnAllBenchmarks) {
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, 16);
    const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
    HalideAutoOptions opts;
    opts.parallelism_threshold = 16;
    const HalideAuto h(*spec.pipeline, model, opts);
    const Grouping g = h.run();
    std::string why;
    EXPECT_TRUE(validate_grouping(*spec.pipeline, g, &why))
        << info.key << ": " << why;
  }
}

TEST(HalideAutoTest, ValidOnWideDagsAcrossScales) {
  // Regression: at near-full image sizes the merge order once produced two
  // mutually-cyclic groups on pyramid blend (pairwise path checks are not
  // a complete cycle test).
  for (const char* key : {"pyramid", "campipe"}) {
    for (std::int64_t scale : {4, 8}) {
      const PipelineSpec spec = make_benchmark(key, scale);
      const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
      const HalideAuto h(*spec.pipeline, model);
      const Grouping g = h.run();
      std::string why;
      EXPECT_TRUE(validate_grouping(*spec.pipeline, g, &why))
          << key << " scale " << scale << ": " << why;
    }
  }
}

TEST(HalideAutoTest, FusesProducerConsumerOnBlur) {
  const PipelineSpec spec = make_blur(1024, 1024);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  const HalideAuto h(*spec.pipeline, model);
  const Grouping g = h.run();
  EXPECT_EQ(g.groups.size(), 1u) << "load-cost model must reward fusing blur";
}

TEST(HalideAutoTest, TilesArePowersOfTwoOnly) {
  // Section 2.4: Halide's implementation considers only power-of-two sizes.
  const PipelineSpec spec = make_harris(512, 1024);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  const HalideAuto h(*spec.pipeline, model);
  const Grouping g = h.run();
  for (const GroupSchedule& gs : g.groups) {
    const AlignResult align = solve_alignment(*spec.pipeline, gs.stages);
    for (int d = 0; d < align.num_classes; ++d) {
      const std::int64_t t = gs.tile_sizes[static_cast<std::size_t>(d)];
      const std::int64_t ext =
          align.class_extent[static_cast<std::size_t>(d)];
      const bool pow2 = (t & (t - 1)) == 0;
      EXPECT_TRUE(pow2 || t >= ext) << "tile " << t << " ext " << ext;
    }
  }
}

TEST(ManualTest, AllBenchmarkManualSchedulesValid) {
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, 16);
    const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
    const Grouping g = spec.manual_grouping(model);
    std::string why;
    EXPECT_TRUE(validate_grouping(*spec.pipeline, g, &why))
        << info.key << ": " << why;
  }
}

TEST(ManualTest, UnmentionedStagesBecomeSingletons) {
  const PipelineSpec spec = make_unsharp(128, 128);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  const Grouping g =
      grouping_from_names(*spec.pipeline, model, {{"blurx", "blury"}}, {{32, 32}});
  EXPECT_EQ(g.groups.size(), 3u);  // {blurx,blury} + sharpen + masked
}

TEST(ManualTest, UnknownStageNameThrows) {
  const PipelineSpec spec = make_unsharp(128, 128);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  EXPECT_THROW(grouping_from_names(*spec.pipeline, model, {{"nope"}}, {{}}),
               Error);
}

TEST(ManualTest, RepeatedStageThrows) {
  const PipelineSpec spec = make_unsharp(128, 128);
  const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
  EXPECT_THROW(grouping_from_names(*spec.pipeline, model,
                                   {{"blurx"}, {"blurx", "blury"}}, {}),
               Error);
}

TEST(GroupingTest, ValidateCatchesDefects) {
  const PipelineSpec spec = make_unsharp(128, 128);
  const Pipeline& pl = *spec.pipeline;
  std::string why;

  Grouping overlap;
  overlap.groups.resize(2);
  overlap.groups[0].stages = NodeSet::single(0).with(1);
  overlap.groups[1].stages = NodeSet::single(1).with(2).with(3);
  EXPECT_FALSE(validate_grouping(pl, overlap, &why));

  Grouping incomplete;
  incomplete.groups.resize(1);
  incomplete.groups[0].stages = NodeSet::single(0).with(1);
  EXPECT_FALSE(validate_grouping(pl, incomplete, &why));

  Grouping disconnected;
  disconnected.groups.resize(2);
  disconnected.groups[0].stages = NodeSet::single(0).with(2);  // blurx+sharpen?
  disconnected.groups[1].stages = NodeSet::single(1).with(3);
  // Either disconnectedness or a quotient cycle must be reported.
  EXPECT_FALSE(validate_grouping(pl, disconnected, &why));
}

TEST(GroupingTest, SingletonGroupingAlwaysValid) {
  for (const auto& info : benchmark_list()) {
    const PipelineSpec spec = make_benchmark(info.key, 16);
    const CostModel model(*spec.pipeline, MachineModel::xeon_haswell());
    const Grouping g = singleton_grouping(*spec.pipeline, model);
    std::string why;
    EXPECT_TRUE(validate_grouping(*spec.pipeline, g, &why)) << why;
    EXPECT_EQ(static_cast<int>(g.groups.size()), spec.pipeline->num_stages());
  }
}

}  // namespace
}  // namespace fusedp
