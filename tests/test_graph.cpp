// Unit tests for NodeSet, Digraph, and set-partition enumeration.
#include <gtest/gtest.h>

#include <set>

#include "graph/digraph.hpp"
#include "graph/partitions.hpp"
#include "support/rng.hpp"

namespace fusedp {
namespace {

TEST(NodeSetTest, BasicOps) {
  NodeSet s;
  EXPECT_TRUE(s.empty());
  s = s.with(3).with(7).with(63);
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.contains(63));
  EXPECT_FALSE(s.contains(0));
  EXPECT_EQ(s.first(), 3);
  EXPECT_EQ(s.without(3).first(), 7);
  EXPECT_EQ((s & NodeSet::single(7)).size(), 1);
  EXPECT_EQ((s - NodeSet::single(7)).size(), 2);
  EXPECT_TRUE(s.contains_all(NodeSet::single(7)));
  EXPECT_EQ(s.to_string(), "{3,7,63}");
}

TEST(NodeSetTest, ForEachAscending) {
  NodeSet s = NodeSet::single(5).with(1).with(9);
  std::vector<int> seen;
  s.for_each([&](int n) { seen.push_back(n); });
  EXPECT_EQ(seen, (std::vector<int>{1, 5, 9}));
}

Digraph diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.finalize();
  return g;
}

TEST(DigraphTest, SuccessorsAndPredecessors) {
  const Digraph g = diamond();
  EXPECT_EQ(g.successors(0).size(), 2);
  EXPECT_EQ(g.predecessors(3).size(), 2);
  EXPECT_EQ(g.successors_of_set(NodeSet::single(0).with(1)).to_string(),
            "{2,3}");
}

TEST(DigraphTest, Reachability) {
  const Digraph g = diamond();
  EXPECT_TRUE(g.is_reachable(0, 3));
  EXPECT_TRUE(g.is_reachable(1, 3));
  EXPECT_FALSE(g.is_reachable(1, 2));
  EXPECT_FALSE(g.is_reachable(3, 0));
  EXPECT_EQ(g.reachable_from(0).size(), 3);
}

TEST(DigraphTest, SourcesAndSinks) {
  const Digraph g = diamond();
  EXPECT_EQ(g.sources().to_string(), "{0}");
  EXPECT_EQ(g.sinks().to_string(), "{3}");
}

TEST(DigraphTest, UndirectedConnectivity) {
  const Digraph g = diamond();
  EXPECT_TRUE(g.is_connected_undirected(NodeSet::single(1).with(0).with(2)));
  EXPECT_FALSE(g.is_connected_undirected(NodeSet::single(1).with(2)));
  EXPECT_TRUE(g.is_connected_undirected(NodeSet::single(1).with(2).with(3)));
  EXPECT_TRUE(g.is_connected_undirected(NodeSet()));
  EXPECT_TRUE(g.is_connected_undirected(NodeSet::single(2)));
}

TEST(DigraphTest, TopoOrderRespectsEdges) {
  const Digraph g = diamond();
  const std::vector<int> order = g.topo_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(DigraphTest, TopoOrderOfSubset) {
  const Digraph g = diamond();
  const std::vector<int> order = g.topo_order_of(NodeSet::single(1).with(3));
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(DigraphTest, QuotientAcyclicity) {
  const Digraph g = diamond();
  // {0,3} sandwiches 1 and 2 -> cyclic quotient.
  EXPECT_FALSE(g.quotient_is_acyclic(
      {NodeSet::single(0).with(3), NodeSet::single(1), NodeSet::single(2)}));
  EXPECT_TRUE(g.quotient_is_acyclic(
      {NodeSet::single(0).with(1), NodeSet::single(2), NodeSet::single(3)}));
  EXPECT_TRUE(g.quotient_is_acyclic(
      {NodeSet::single(0).with(1).with(2).with(3)}));
}

TEST(DigraphTest, MutuallyCyclicGroupsDetected) {
  // a=0->m=1, d=2->m, c=3->b=4 (internal), a->b, c->d: groups {a,m,d} and
  // {b,c} are each internally fine but mutually cyclic.
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  g.add_edge(3, 4);
  g.add_edge(0, 4);
  g.add_edge(3, 2);
  g.finalize();
  EXPECT_FALSE(g.quotient_is_acyclic(
      {NodeSet::single(0).with(1).with(2), NodeSet::single(3).with(4)}));
}

TEST(DigraphTest, CycleThrows) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(g.finalize(), Error);
}

TEST(DigraphTest, RejectsSelfEdge) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(1, 1), Error);
}

TEST(PartitionsTest, CountsAreBellNumbers) {
  EXPECT_EQ(bell_number(0), 1u);
  EXPECT_EQ(bell_number(1), 1u);
  EXPECT_EQ(bell_number(2), 2u);
  EXPECT_EQ(bell_number(3), 5u);
  EXPECT_EQ(bell_number(5), 52u);
  EXPECT_EQ(bell_number(10), 115975u);
  for (int k = 1; k <= 8; ++k) {
    NodeSet s;
    for (int i = 0; i < k; ++i) s = s.with(i * 3);  // non-contiguous members
    std::uint64_t count = 0;
    for_each_partition(s, [&](const std::vector<NodeSet>&) { ++count; });
    EXPECT_EQ(count, bell_number(k)) << "k=" << k;
  }
}

TEST(PartitionsTest, PartsAreDisjointAndCover) {
  NodeSet s = NodeSet::single(1).with(4).with(6).with(7);
  for_each_partition(s, [&](const std::vector<NodeSet>& parts) {
    NodeSet u;
    for (NodeSet p : parts) {
      EXPECT_FALSE(p.empty());
      EXPECT_FALSE(u.intersects(p));
      u = u | p;
    }
    EXPECT_EQ(u.bits(), s.bits());
  });
}

TEST(PartitionsTest, DistinctPartitions) {
  NodeSet s = NodeSet::single(0).with(1).with(2).with(3).with(4);
  std::set<std::vector<std::uint64_t>> seen;
  for_each_partition(s, [&](const std::vector<NodeSet>& parts) {
    std::vector<std::uint64_t> key;
    for (NodeSet p : parts) key.push_back(p.bits());
    std::sort(key.begin(), key.end());
    EXPECT_TRUE(seen.insert(key).second) << "duplicate partition";
  });
  EXPECT_EQ(seen.size(), 52u);
}

TEST(PartitionsTest, EmptySetHasOnePartition) {
  int count = 0;
  for_each_partition(NodeSet(), [&](const std::vector<NodeSet>& parts) {
    EXPECT_TRUE(parts.empty());
    ++count;
  });
  EXPECT_EQ(count, 1);
}

// Property: reachability closure equals per-query BFS on random DAGs.
TEST(DigraphProperty, ReachabilityMatchesBfs) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 10 + static_cast<int>(rng.next_below(20));
    Digraph g(n);
    for (int a = 0; a < n; ++a)
      for (int b = a + 1; b < n; ++b)
        if (rng.next_bool(0.15)) g.add_edge(a, b);
    g.finalize();
    for (int a = 0; a < n; ++a) {
      // BFS from a.
      NodeSet visited;
      NodeSet frontier = g.successors(a);
      while (!frontier.empty()) {
        visited = visited | frontier;
        NodeSet next;
        frontier.for_each([&](int v) { next = next | g.successors(v); });
        frontier = next - visited;
      }
      EXPECT_EQ(g.reachable_from(a).bits(), visited.bits());
    }
  }
}

}  // namespace
}  // namespace fusedp
