// fusedp_verify — differential verification driver.
//
//   fusedp_verify --seed=N              cross-check one generated pipeline
//   fusedp_verify --seeds=N [--start=S] cross-check a range of seeds
//   fusedp_verify --replay=N            re-run a recorded seed verbosely
//   fusedp_verify --replay=N --trace=F  also execute the seed's pipeline
//                                       through a Session and export the
//                                       Chrome trace for post-mortems
//
// Every seed deterministically generates a random pipeline, runs it through
// all execution backends over randomized schedules, and bit-compares every
// materialized stage against the scalar reference.  On divergence the full
// record (stage, coordinate, bit patterns, options, schedule) is printed and
// the exit code is 1; the usual fusedp exit-code map covers errors
// (2 usage, 3 invalid input, 4 budget, 5 internal).
#include <cstdio>
#include <string>

#include "api/session.hpp"
#include "support/cli.hpp"
#include "support/status.hpp"
#include "verify/differ.hpp"

using namespace fusedp;

namespace {

void usage() {
  std::printf(
      "usage: fusedp_verify (--seed=N | --seeds=N [--start=S] | --replay=N)\n"
      "                     [--groupings=G] [--threads=T] [--max-stages=M]\n"
      "                     [--max-extent=E] [--trace=F (with --replay)]\n"
      "exit codes: 0 all seeds clean, 1 divergence found, 2 usage,\n"
      "            3 invalid input, 4 budget/deadline exhausted, 5 internal,\n"
      "            6 resource budget exhausted\n");
}

int exit_code_of(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidPipeline:
    case ErrorCode::kInvalidSchedule:
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kIoError:
      return 3;
    case ErrorCode::kSearchBudgetExhausted:
    case ErrorCode::kDeadlineExceeded:
      return 4;
    case ErrorCode::kResourceExhausted:
      return 6;
    default:
      return 5;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  try {
    verify::DifferOptions opts;
    opts.groupings_per_seed = static_cast<int>(cli.get_int("groupings", 3));
    opts.max_threads = static_cast<int>(cli.get_int("threads", 3));
    opts.gen.max_stages = static_cast<int>(
        cli.get_int("max-stages", opts.gen.max_stages));
    opts.gen.max_extent = cli.get_int("max-extent", opts.gen.max_extent);

    std::uint64_t start = 0;
    std::uint64_t count = 0;
    bool replay = false;
    if (cli.has("replay")) {
      start = static_cast<std::uint64_t>(cli.get_int("replay", 0));
      count = 1;
      replay = true;
    } else if (cli.has("seed")) {
      start = static_cast<std::uint64_t>(cli.get_int("seed", 0));
      count = 1;
    } else if (cli.has("seeds")) {
      start = static_cast<std::uint64_t>(cli.get_int("start", 0));
      count = static_cast<std::uint64_t>(cli.get_int("seeds", 0));
    } else {
      usage();
      return 2;
    }

    int total_runs = 0;
    for (std::uint64_t s = start; s < start + count; ++s) {
      const verify::DiffResult res = verify::diff_seed(s, opts);
      total_runs += res.runs;
      if (res.diverged) {
        std::printf("%s\n", res.record.to_string().c_str());
        return 1;
      }
      if (replay) {
        std::printf(
            "seed %llu clean: %d executor configs (bit-exact rungs + "
            "fastmath tolerance rung)\n",
            static_cast<unsigned long long>(s), res.runs);
        // Post-mortem timeline: re-execute the seed's pipeline through the
        // Session facade with the trace collector attached and export it.
        const std::string trace_path = cli.get("trace", "");
        if (!trace_path.empty()) {
          const auto pl = verify::generate_pipeline(s, opts.gen);
          const auto inputs = verify::generate_inputs(*pl, s);
          Options sopts;
          sopts.num_threads = opts.max_threads;
          sopts.collect_trace = true;
          Result<Session> opened = Session::open(*pl, sopts);
          if (!opened.ok()) throw opened.error();
          Session session = std::move(opened).value();
          if (Result<double> r = session.execute(inputs); !r.ok())
            throw r.error();
          Result<int> wrote = session.write_trace(trace_path);
          if (!wrote.ok()) throw wrote.error();
          std::printf("wrote %d trace events to %s\n", wrote.value(),
                      trace_path.c_str());
        }
      }
      else if ((s - start + 1) % 50 == 0)
        std::printf("  ...%llu/%llu seeds clean\n",
                    static_cast<unsigned long long>(s - start + 1),
                    static_cast<unsigned long long>(count));
    }
    std::printf("%llu seed(s) clean: %d executor configs, zero divergences\n",
                static_cast<unsigned long long>(count), total_runs);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error [%s]: %s\n", error_code_name(e.code()),
                 e.what());
    return exit_code_of(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 5;
  }
}
