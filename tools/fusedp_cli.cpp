// fusedp — command-line driver for the library.
//
//   fusedp list
//   fusedp show <benchmark> [--scale=N]
//   fusedp schedule <benchmark> [--scheduler=dp|greedy|hauto|manual]
//                   [--machine=xeon|opteron|host] [--scale=N] [--save=FILE]
//   fusedp dot <benchmark> [--scheduler=...] [--scale=N]      (graphviz)
//   fusedp run <benchmark> [--scheduler=...] [--threads=T] [--runs=R]
//              [--verify] [--pooled] [--load=FILE]
//              [--cache=read|readwrite] [--cache-dir=DIR]
//              [--trace=FILE.json] [--report]
//   fusedp cache <stats|verify|evict|warm> --cache-dir=DIR
//              [--repair] [--stem=S|--all] [--bench=KEY|all] [--measure]
//
// `run` executes through the fusedp::Session facade; --trace exports the
// measured run as Chrome trace_event JSON and --report prints the cost
// model's predicted per-group scores against measured wall times.  With
// --cache, `run` opens through the persistent schedule cache (a hit skips
// the search entirely); `cache` inspects and maintains a cache directory.
#include <cstdio>
#include <cstring>

#include "fusedp.hpp"
#include "fusion/serialize.hpp"
#include "ir/dot.hpp"
#include "storage/findb.hpp"
#include "support/cli.hpp"
#include "support/fingerprint.hpp"
#include "support/timing.hpp"
#include "verify/differ.hpp"

using namespace fusedp;

namespace {

MachineModel machine_of(const Cli& cli) {
  const std::string m = cli.get("machine", "host");
  if (m == "xeon") return MachineModel::xeon_haswell();
  if (m == "opteron") return MachineModel::amd_opteron();
  return MachineModel::host();
}

Grouping make_schedule(const Cli& cli, const PipelineSpec& spec,
                       const CostModel& model) {
  const std::string load = cli.get("load", "");
  if (!load.empty()) return load_grouping(*spec.pipeline, load);
  const std::string which = cli.get("scheduler", "dp");
  if (which == "dp") {
    IncOptions iopts;
    iopts.max_states =
        static_cast<std::uint64_t>(cli.get_int("max-states", 50'000'000));
    iopts.deadline_seconds = cli.get_double("deadline-ms", 0.0) / 1e3;
    IncFusion inc(*spec.pipeline, model, iopts);
    return inc.run();
  }
  if (which == "auto") {
    AutoScheduleOptions opts;
    opts.deadline_seconds = cli.get_double("deadline-ms", 0.0) / 1e3;
    opts.max_states =
        static_cast<std::uint64_t>(cli.get_int("max-states", 50'000'000));
    ScheduleResult res = auto_schedule(*spec.pipeline, model, opts);
    std::fprintf(stderr, "%s", res.diagnostics.summary().c_str());
    return std::move(res.grouping);
  }
  if (which == "greedy") {
    const PolyMageGreedy greedy(*spec.pipeline, model);
    return greedy.run(cli.get_int("t1", 64), cli.get_int("t2", 128),
                      cli.get_double("tolerance", 0.4));
  }
  if (which == "hauto") {
    HalideAutoOptions opts;
    opts.cache_bytes = model.machine().l2_bytes;
    opts.parallelism_threshold = model.machine().cores;
    const HalideAuto h(*spec.pipeline, model, opts);
    return h.run();
  }
  if (which == "manual") return spec.manual_grouping(model);
  FUSEDP_CHECK_CODE(false, ErrorCode::kInvalidArgument,
                    "unknown scheduler: " + which +
                        " (want dp|auto|greedy|hauto|manual)");
  return {};
}

int cmd_list() {
  std::printf("%-12s %-22s %7s %s\n", "key", "benchmark", "stages",
              "paper image size");
  for (const auto& b : benchmark_list())
    std::printf("%-12s %-22s %7d %s\n", b.key.c_str(), b.title.c_str(),
                b.paper_stages, b.paper_size.c_str());
  std::printf("%-12s %-22s %7d %s\n", "blur", "Blur (paper Fig. 1)", 2,
              "2048x2048x3");
  return 0;
}

int cmd_show(const Cli& cli, const std::string& bench) {
  const PipelineSpec spec = make_benchmark(bench, cli.get_int("scale", 8));
  std::printf("%s", pipeline_to_string(*spec.pipeline).c_str());
  return 0;
}

int cmd_schedule(const Cli& cli, const std::string& bench) {
  const PipelineSpec spec = make_benchmark(bench, cli.get_int("scale", 8));
  const CostModel model(*spec.pipeline, machine_of(cli));
  const Grouping g = make_schedule(cli, spec, model);
  std::printf("%s", g.to_string(*spec.pipeline).c_str());
  std::printf("\n%s", plan_to_string(lower(*spec.pipeline, g)).c_str());
  const std::string save = cli.get("save", "");
  if (!save.empty()) {
    save_grouping(*spec.pipeline, g, save);
    std::printf("\nsaved schedule to %s\n", save.c_str());
  }
  return 0;
}

int cmd_dot(const Cli& cli, const std::string& bench) {
  const PipelineSpec spec = make_benchmark(bench, cli.get_int("scale", 8));
  if (cli.has("scheduler") || cli.has("load")) {
    const CostModel model(*spec.pipeline, machine_of(cli));
    std::printf("%s", grouping_to_dot(*spec.pipeline,
                                      make_schedule(cli, spec, model))
                          .c_str());
  } else {
    std::printf("%s", pipeline_to_dot(*spec.pipeline).c_str());
  }
  return 0;
}

// Maps the CLI scheduler spelling onto the Session facade's enum (the
// cached `run` path schedules inside Session::open, not via make_schedule).
Scheduler session_scheduler_of(const std::string& which) {
  if (which == "auto") return Scheduler::kAuto;
  if (which == "dp") return Scheduler::kDp;
  if (which == "greedy") return Scheduler::kGreedy;
  if (which == "hauto") return Scheduler::kHalideAuto;
  if (which == "unfused") return Scheduler::kUnfused;
  FUSEDP_CHECK_CODE(false, ErrorCode::kInvalidArgument,
                    "--cache runs schedule inside the session; --scheduler "
                    "must be auto|dp|greedy|hauto|unfused (got " +
                        which + ")");
  return Scheduler::kAuto;
}

// Applies --cache/--cache-dir to session options (coded error on misuse).
void apply_cache_flags(const Cli& cli, Options* opts) {
  const std::string mode = cli.get("cache", "");
  if (mode.empty()) return;
  if (mode == "read") {
    opts->cache_mode = findb::CacheMode::kRead;
  } else if (mode == "readwrite") {
    opts->cache_mode = findb::CacheMode::kReadWrite;
  } else {
    FUSEDP_CHECK_CODE(false, ErrorCode::kInvalidArgument,
                      "--cache must be read or readwrite (got " + mode + ")");
  }
  opts->cache_dir = cli.get("cache-dir", "");
  FUSEDP_CHECK_CODE(!opts->cache_dir.empty(), ErrorCode::kInvalidArgument,
                    "--cache requires --cache-dir=DIR");
}

void print_cache_events(const Session& session) {
  for (const observe::CacheEvent& ev : session.cache_events())
    std::printf("cache %s: %s%s%s (%.3f ms)\n", ev.action.c_str(),
                ev.outcome.c_str(), ev.from_memory ? " [memory]" : "",
                ev.detail.empty() ? "" : (" — " + ev.detail).c_str(),
                ev.seconds * 1e3);
}

int cmd_run(const Cli& cli, const std::string& bench) {
  const PipelineSpec spec = make_benchmark(bench, cli.get_int("scale", 8));
  const Pipeline& pl = *spec.pipeline;
  const bool use_cache = cli.has("cache");
  const CostModel model(pl, machine_of(cli));
  Grouping g;
  if (!use_cache) {
    g = make_schedule(cli, spec, model);
    std::printf("%s\n", g.to_string(pl).c_str());
  } else {
    FUSEDP_CHECK_CODE(!cli.has("load"), ErrorCode::kInvalidArgument,
                      "--cache and --load are mutually exclusive (a loaded "
                      "schedule bypasses the cache by definition)");
  }

  const std::vector<Buffer> inputs = spec.make_inputs();
  const std::string trace_path = cli.get("trace", "");
  const bool want_report = cli.has("report");

  Options opts;
  opts.num_threads = static_cast<int>(cli.get_int("threads", 4));
  opts.pooled_storage = cli.has("pooled");
  opts.machine = machine_of(cli);
  opts.collect_trace = !trace_path.empty() || want_report;
  // The report only needs per-group aggregates; tile events are collected
  // only when a timeline is actually being exported.
  opts.trace_tiles = !trace_path.empty();
  // Request governance: per-run deadline and degradation-ladder depth.
  opts.run_deadline_seconds = cli.get_double("run-deadline-ms", 0.0) / 1e3;
  opts.max_run_attempts = static_cast<int>(cli.get_int("attempts", 1));
  // Process-wide Workspace/ScratchArena budget (0 = unlimited): overruns
  // surface as resource-exhausted (exit code 6) instead of OOM.
  const std::int64_t budget_mb = cli.get_int("mem-budget-mb", 0);
  if (budget_mb > 0)
    ResourceGovernor::instance().set_budget(budget_mb * (1 << 20));

  Result<Session> opened = [&] {
    if (!use_cache) return Session::open(pl, g, opts);
    // Cache path: the session schedules (or warm-starts) itself.
    apply_cache_flags(cli, &opts);
    opts.scheduler = session_scheduler_of(cli.get("scheduler", "auto"));
    opts.deadline_seconds = cli.get_double("deadline-ms", 0.0) / 1e3;
    opts.max_states =
        static_cast<std::uint64_t>(cli.get_int("max-states", 50'000'000));
    return Session::open(pl, opts);
  }();
  if (!opened.ok()) throw opened.error();
  Session session = std::move(opened).value();
  if (use_cache) {
    print_cache_events(session);
    std::printf("%s%s\n", session.warm_start() ? "warm start\n" : "",
                session.grouping().to_string(pl).c_str());
    g = session.grouping();
  }

  if (Result<double> warm = session.execute(inputs); !warm.ok())
    throw warm.error();
  const int runs = static_cast<int>(cli.get_int("runs", 3));
  const RunStats st =
      measure_min_of_averages([&] { session.execute(inputs); }, 1, runs);
  std::printf("%s: %.2f ms (best %.2f) on %d threads%s\n", bench.c_str(),
              st.min_avg_ms, st.best_ms, opts.num_threads,
              opts.pooled_storage ? ", pooled storage" : "");

  if (!trace_path.empty()) {
    Result<int> wrote = session.write_trace(trace_path);
    if (!wrote.ok()) throw wrote.error();
    std::printf("wrote %d trace events to %s (chrome://tracing, Perfetto)\n",
                wrote.value(), trace_path.c_str());
  }
  if (want_report) {
    Result<observe::Report> rep = session.report();
    if (!rep.ok()) throw rep.error();
    std::printf("\n%s", observe::report_to_string(rep.value()).c_str());
    std::printf("\n%s", plan_to_string(session.plan(), session.trace()).c_str());
    // The degradation-ladder post-mortem of the most recent execute().
    std::printf("\n%s",
                observe::run_report_to_string(session.last_report()).c_str());
  }

  if (cli.has("verify")) {
    // Re-run the chosen schedule through the differential oracle: every
    // backend config, every materialized stage bit-compared to the scalar
    // reference.  Divergence exits through the standard error-code map.
    const verify::DiffResult res = verify::diff_grouping(
        pl, g, inputs, static_cast<std::uint64_t>(cli.get_int("seed", 0)));
    if (res.diverged) {
      std::fprintf(stderr, "%s\n", res.record.to_string().c_str());
      FUSEDP_CHECK_CODE(false, ErrorCode::kInternal,
                        "differential verification FAILED (backend " +
                            res.record.backend + ")");
    }
    std::printf(
        "verified: %d executor configs clean (bit-exact rungs + fastmath "
        "tolerance rung)\n",
        res.runs);
  }
  return 0;
}

// fusedp cache <stats|verify|evict|warm> --cache-dir=DIR
//
// Maintenance for a persistent schedule-cache directory.  `stats` is a
// plain inventory (any build's records); `verify` validates against the
// running build (checksums, format version, git SHA) and with --repair
// deletes what fails; `evict` removes one record (--stem=S) or everything
// (--all); `warm` pre-populates the cache by opening benchmark pipelines
// with the cache in readwrite mode.
int cmd_cache(const Cli& cli, const std::string& sub) {
  const std::string dir = cli.get("cache-dir", "");
  FUSEDP_CHECK_CODE(!dir.empty(), ErrorCode::kInvalidArgument,
                    "fusedp cache requires --cache-dir=DIR");
  findb::FindbOptions fo;
  fo.dir = dir;
  fo.mode = findb::CacheMode::kReadWrite;

  if (sub == "stats" || sub == "verify") {
    const bool repair = cli.has("repair");
    FUSEDP_CHECK_CODE(!repair || sub == "verify", ErrorCode::kInvalidArgument,
                      "--repair only applies to `cache verify`");
    // stats inventories records from any build; verify holds them against
    // the running one (a stale SHA is a validity failure there).
    fo.git_sha = sub == "verify" ? build_git_sha() : "";
    findb::FindDb db(fo);
    Result<std::vector<findb::EntryInfo>> scanned = db.scan(repair);
    if (!scanned.ok()) throw scanned.error();
    std::int64_t total_bytes = 0;
    int valid = 0, invalid = 0;
    for (const findb::EntryInfo& e : scanned.value()) {
      total_bytes += e.bytes;
      e.valid ? ++valid : ++invalid;
      if (e.valid)
        std::printf("%-52s %8lld B  %-10s %s (%zu groups)\n", e.file.c_str(),
                    static_cast<long long>(e.bytes), e.record.rung.c_str(),
                    e.record.pipeline.c_str(),
                    static_cast<std::size_t>(std::count(
                        e.record.schedule_text.begin(),
                        e.record.schedule_text.end(), '\n')) -
                        1);
      else
        std::printf("%-52s %8lld B  INVALID: %s%s\n", e.file.c_str(),
                    static_cast<long long>(e.bytes), e.problem.c_str(),
                    repair ? " [removed]" : "");
    }
    std::printf("%d record(s), %d invalid, %lld bytes in %s\n", valid + invalid,
                invalid, static_cast<long long>(total_bytes), dir.c_str());
    // verify without --repair reports damage through the exit code so CI
    // and scripts can gate on a clean cache.
    if (sub == "verify" && invalid > 0 && !repair)
      FUSEDP_CHECK_CODE(false, ErrorCode::kInvalidSchedule,
                        std::to_string(invalid) +
                            " invalid cache record(s); rerun with --repair "
                            "to remove them");
    return 0;
  }

  if (sub == "evict") {
    findb::FindDb db(fo);
    const std::string stem = cli.get("stem", "");
    FUSEDP_CHECK_CODE(cli.has("all") != !stem.empty(),
                      ErrorCode::kInvalidArgument,
                      "cache evict needs exactly one of --all or --stem=S");
    Result<int> removed = [&] {
      if (cli.has("all")) return db.evict_all();
      findb::CacheKey key;
      FUSEDP_CHECK_CODE(findb::CacheKey::parse_stem(stem, &key),
                        ErrorCode::kInvalidArgument,
                        "--stem must be <16hex>-<16hex>-<16hex>");
      return db.evict(key);
    }();
    if (!removed.ok()) throw removed.error();
    findb::FindDb::clear_memory_tier();
    std::printf("evicted %d record(s) from %s\n", removed.value(),
                dir.c_str());
    return 0;
  }

  if (sub == "warm") {
    const std::string which = cli.get("bench", "all");
    const bool measure = cli.has("measure");
    std::vector<std::string> keys;
    if (which == "all") {
      for (const auto& b : benchmark_list()) keys.push_back(b.key);
    } else {
      keys.push_back(which);
    }
    for (const std::string& key : keys) {
      const PipelineSpec spec = make_benchmark(key, cli.get_int("scale", 8));
      Options opts;
      opts.num_threads = static_cast<int>(cli.get_int("threads", 4));
      opts.machine = machine_of(cli);
      opts.scheduler = Scheduler::kAuto;
      opts.deadline_seconds = cli.get_double("deadline-ms", 0.0) / 1e3;
      opts.cache_mode = findb::CacheMode::kReadWrite;
      opts.cache_dir = dir;
      WallTimer t;
      Result<Session> opened = Session::open(*spec.pipeline, opts);
      if (!opened.ok()) throw opened.error();
      Session session = std::move(opened).value();
      std::printf("%-12s open %.1f ms, %s\n", key.c_str(), t.seconds() * 1e3,
                  session.warm_start() ? "warm (cache hit)"
                                       : "cold (searched + stored)");
      print_cache_events(session);
      if (measure) {
        const std::vector<Buffer> inputs = spec.make_inputs();
        Result<double> r = session.execute(inputs);
        if (!r.ok()) throw r.error();
        std::printf("%-12s run  %.2f ms\n", key.c_str(), r.value() * 1e3);
      }
    }
    return 0;
  }

  FUSEDP_CHECK_CODE(false, ErrorCode::kInvalidArgument,
                    "unknown cache subcommand: " + sub +
                        " (want stats|verify|evict|warm)");
  return 2;
}

void usage() {
  std::printf(
      "usage: fusedp <command> [flags]\n"
      "  list                         available benchmark pipelines\n"
      "  show <bench>                 print the pipeline IR\n"
      "  schedule <bench>             run a scheduler, print/save the result\n"
      "  dot <bench>                  graphviz DAG (clustered if --scheduler)\n"
      "  run <bench>                  execute (and optionally --verify)\n"
      "  cache <stats|verify|evict|warm>  persistent schedule-cache tools\n"
      "flags: --scale=N --machine=xeon|opteron|host "
      "--scheduler=dp|auto|greedy|hauto|manual\n"
      "       --threads=T --runs=R --verify --pooled --save=F --load=F\n"
      "       --cache=read|readwrite --cache-dir=DIR  (run through the\n"
      "         persistent schedule cache; a hit skips the search)\n"
      "       cache flags: --repair (verify) --all|--stem=S (evict)\n"
      "         --bench=KEY|all --measure (warm)\n"
      "       --deadline-ms=D --max-states=S   (--scheduler=auto budgets)\n"
      "       --run-deadline-ms=D  (per-request execution deadline)\n"
      "       --attempts=N         (degradation-ladder depth, default 1)\n"
      "       --mem-budget-mb=N    (workspace/arena budget, 0 = unlimited)\n"
      "       --trace=FILE (chrome trace_event JSON of the measured run)\n"
      "       --report     (per-group predicted-vs-measured table + attempt "
      "ladder)\n"
      "exit codes: 0 ok, 2 usage, 3 invalid input, 4 budget/deadline "
      "exhausted, 5 internal, 6 resource budget exhausted\n");
}

// Scripted callers dispatch on the exit code, so each error-code family
// maps to a distinct one: usage=2, invalid input=3, budget/deadline=4,
// internal (and everything unexpected)=5, resource budget=6.
int exit_code_of(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidPipeline:
    case ErrorCode::kInvalidSchedule:
    case ErrorCode::kInvalidArgument:
    case ErrorCode::kIoError:
      return 3;
    case ErrorCode::kSearchBudgetExhausted:
    case ErrorCode::kDeadlineExceeded:
      return 4;
    case ErrorCode::kResourceExhausted:
      return 6;
    case ErrorCode::kInternal:
    case ErrorCode::kAllocationFailed:
    case ErrorCode::kFaultInjected:
      return 5;
  }
  return 5;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Cli cli(argc, argv);
  try {
    if (cmd == "list") return cmd_list();
    if (argc < 3) {
      usage();
      return 2;
    }
    const std::string bench = argv[2];
    if (cmd == "show") return cmd_show(cli, bench);
    if (cmd == "schedule") return cmd_schedule(cli, bench);
    if (cmd == "dot") return cmd_dot(cli, bench);
    if (cmd == "run") return cmd_run(cli, bench);
    if (cmd == "cache") return cmd_cache(cli, bench);
    usage();
    return 2;
  } catch (const Error& e) {
    std::fprintf(stderr, "error [%s]: %s\n", error_code_name(e.code()),
                 e.what());
    return exit_code_of(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return 5;
  }
}
