// fusedp_chaos: the chaos soak as a standalone tool.
//
//   fusedp_chaos [--sessions=8] [--requests=5000] [--fault-rate=0.3]
//                [--deadline-rate=0.3] [--pool-backend=0.25] [--budget-mb=64]
//                [--seconds=0] [--seed=1] [--pool=12] [--max-attempts=3]
//                [--cache=DIR] [--cache-rate=0.7] [--cache-corrupt-rate=0.2]
//                [--cache-fault-rate=0.1]
//                [--no-verify] [--out=chaos.json]
//
// --cache=DIR additionally soaks the persistent schedule cache: requests
// share the directory in readwrite mode while the harness corrupts records,
// kills writers mid-commit (fault injection) and races stores — every cache
// failure must resolve to a coded event plus a fresh autoschedule.
//
// Soaks N concurrent Sessions over randomly generated pipelines under
// injected faults, random per-request deadlines and a constrained memory
// budget, then prints a one-line summary.  Exit code 0 iff the soak is
// clean: every request terminated in a coded state and every success —
// degraded or not — was bit-identical to the scalar reference.
#include <cstdio>
#include <fstream>

#include "support/cli.hpp"
#include "verify/chaos.hpp"

int main(int argc, char** argv) {
  fusedp::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf(
        "usage: fusedp_chaos [--sessions=N] [--requests=N] [--fault-rate=F]\n"
        "                    [--deadline-rate=F] [--budget-mb=N | "
        "--budget-kb=N]\n"
        "                    [--seconds=F] [--seed=N] [--pool=N]\n"
        "                    [--pool-backend=F] [--max-attempts=N]\n"
        "                    [--cache=DIR] [--cache-rate=F]\n"
        "                    [--cache-corrupt-rate=F] [--cache-fault-rate=F]\n"
        "                    [--no-verify] [--out=PATH]\n");
    return 0;
  }

  fusedp::verify::ChaosOptions opts;
  opts.sessions = static_cast<int>(cli.get_int("sessions", 8));
  opts.requests = static_cast<int>(cli.get_int("requests", 5000));
  opts.fault_rate = cli.get_double("fault-rate", 0.3);
  opts.deadline_rate = cli.get_double("deadline-rate", 0.3);
  // Fraction of requests on the work-stealing pool backend (--pool is the
  // generated-pipeline pool size, a different knob).
  opts.pool_backend_rate = cli.get_double("pool-backend", 0.25);
  // --budget-kb exists because the generated-pipeline pool is small: a
  // budget that actually binds is well under 1 MB.
  opts.memory_budget_bytes = cli.has("budget-kb")
                                 ? cli.get_int("budget-kb", 0) * 1024
                                 : cli.get_int("budget-mb", 64) * (1 << 20);
  opts.max_seconds = cli.get_double("seconds", 0.0);
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  opts.pipeline_pool = static_cast<int>(cli.get_int("pool", 12));
  opts.max_attempts = static_cast<int>(cli.get_int("max-attempts", 3));
  opts.verify_outputs = !cli.has("no-verify");
  opts.cache_dir = cli.get("cache", "");
  opts.cache_rate = cli.get_double("cache-rate", 0.7);
  opts.cache_corrupt_rate = cli.get_double("cache-corrupt-rate", 0.2);
  opts.cache_fault_rate = cli.get_double("cache-fault-rate", 0.1);

  fusedp::verify::ChaosStats stats = fusedp::verify::run_chaos(opts);
  std::printf("%s\n", stats.summary().c_str());

  const std::string out = cli.get("out", "");
  if (!out.empty()) {
    std::ofstream f(out);
    if (!f) {
      std::fprintf(stderr, "fusedp_chaos: cannot write %s\n", out.c_str());
      return 2;
    }
    f << stats.to_json() << "\n";
    std::printf("wrote %s\n", out.c_str());
  }
  return stats.clean() ? 0 : 1;
}
