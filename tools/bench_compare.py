#!/usr/bin/env python3
"""Compare or gate fusedp BENCH_*.json artifacts.

Two modes:

  diff: compare a baseline artifact against a candidate and fail on
        per-pipeline regressions beyond a threshold.

            bench_compare.py diff BASE.json NEW.json [--threshold=0.05]

        Pipelines are matched by name; the primary metric is the artifact's
        per-pipeline ns/pixel (vector when present, else the per-thread ms
        of scaling artifacts).  Exit 1 if any pipeline slows down by more
        than the threshold fraction, with a per-pipeline report either way.

  gate: enforce the never-pessimize invariant on a single BENCH_vector.json:
        every pipeline's vector/scalar speedup must be >= --min-speedup
        (default 1.00 — the vector backend must never lose end to end).

            bench_compare.py gate BENCH_vector.json [--min-speedup=1.00]

        Group-level regressions recorded in the artifact's `regressions`
        array are reported with their suspected cause but only fail the
        gate with --fail-on-group-regression (pipeline totals are the
        contract; sub-ms group noise is attribution, not a failure).

Exit codes: 0 clean, 1 regression / gate failure, 2 usage or bad artifact.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def pipeline_metrics(doc):
    """name -> (metric, unit); lower is better for every metric emitted."""
    out = {}
    for p in doc.get("pipelines", []):
        name = p.get("name")
        if name is None:
            continue
        if "vector_ns_per_pixel" in p:
            out[name] = (p["vector_ns_per_pixel"], "ns/px")
        elif "ns_per_pixel" in p:
            out[name] = (p["ns_per_pixel"], "ns/px")
        elif "ms" in p:
            out[name] = (p["ms"], "ms")
    return out


def cmd_diff(args):
    base = pipeline_metrics(load(args.base))
    cand = pipeline_metrics(load(args.candidate))
    if not base or not cand:
        print("bench_compare: no per-pipeline metrics found", file=sys.stderr)
        return 2
    failures = []
    for name in sorted(base):
        if name not in cand:
            print(f"  {name:<12} missing from candidate")
            continue
        b, unit = base[name]
        c, _ = cand[name]
        if b <= 0:
            continue
        ratio = c / b
        mark = ""
        if ratio > 1.0 + args.threshold:
            mark = "  REGRESSED"
            failures.append((name, ratio))
        elif ratio < 1.0 - args.threshold:
            mark = "  improved"
        print(f"  {name:<12} {b:10.3f} -> {c:10.3f} {unit}  "
              f"({(ratio - 1.0) * 100.0:+.1f}%){mark}")
    for name in sorted(set(cand) - set(base)):
        print(f"  {name:<12} new in candidate")
    if failures:
        worst = max(failures, key=lambda f: f[1])
        print(f"bench_compare: {len(failures)} pipeline(s) regressed beyond "
              f"{args.threshold * 100:.0f}% (worst: {worst[0]} "
              f"{(worst[1] - 1.0) * 100.0:+.1f}%)")
        return 1
    print("bench_compare: no pipeline regressed beyond "
          f"{args.threshold * 100:.0f}%")
    return 0


def cmd_gate(args):
    doc = load(args.artifact)
    pipelines = doc.get("pipelines", [])
    if not pipelines:
        print("bench_compare: artifact has no pipelines", file=sys.stderr)
        return 2
    failed = []
    for p in pipelines:
        name = p.get("name", "?")
        speedup = p.get("speedup")
        if speedup is None:
            print(f"bench_compare: pipeline {name} has no speedup field",
                  file=sys.stderr)
            return 2
        ok = speedup >= args.min_speedup
        print(f"  {name:<12} vector/scalar speedup {speedup:5.2f}x"
              f"{'' if ok else '  BELOW GATE'}")
        if not ok:
            failed.append(name)
    group_regs = doc.get("regressions", [])
    for r in group_regs:
        print(f"  group regression: {r.get('pipeline', '?')}"
              f"[{r.get('stages', '?')}] {r.get('speedup', 0):.2f}x "
              f"({r.get('delta_ms', 0):+.3f} ms, "
              f"cause: {r.get('cause', '?')}"
              f"{', gate-demoted' if r.get('gate_demoted') else ''})")
    if args.fail_on_group_regression and group_regs:
        failed.extend(f"{r.get('pipeline', '?')}[{r.get('stages', '?')}]"
                      for r in group_regs)
    geo = doc.get("geomean_speedup")
    if geo is not None:
        print(f"  geomean speedup: {geo:.2f}x")
    if failed:
        print(f"bench_compare: never-pessimize gate FAILED for: "
              f"{', '.join(failed)} (min speedup {args.min_speedup:.2f}x)")
        return 1
    print(f"bench_compare: never-pessimize gate passed "
          f"(all pipelines >= {args.min_speedup:.2f}x)")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="mode", required=True)

    d = sub.add_parser("diff", help="baseline vs candidate artifact")
    d.add_argument("base")
    d.add_argument("candidate")
    d.add_argument("--threshold", type=float, default=0.05,
                   help="allowed fractional slowdown per pipeline "
                        "(default 0.05)")
    d.set_defaults(func=cmd_diff)

    g = sub.add_parser("gate", help="never-pessimize gate on BENCH_vector")
    g.add_argument("artifact")
    g.add_argument("--min-speedup", type=float, default=1.00,
                   help="minimum per-pipeline vector/scalar speedup "
                        "(default 1.00)")
    g.add_argument("--fail-on-group-regression", action="store_true",
                   help="also fail on group-level regressions")
    g.set_defaults(func=cmd_gate)

    args = ap.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
